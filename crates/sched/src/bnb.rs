//! An exact branch-and-bound scheduler for small jobs.
//!
//! Not part of the paper — an addition used as the *optimality reference*
//! in tests and ablations: on jobs small enough to solve exactly, MCTS and
//! Spear can be measured against the true optimum rather than against
//! each other.
//!
//! The search explores the same decoupled action space as the simulator
//! (so its optimum is the optimum over every schedule the other
//! schedulers could emit), depth-first, with:
//!
//! * an incumbent initialized by the Tetris greedy schedule,
//! * a critical-path + load lower bound per node,
//! * symmetry reduction: at each node the *schedule* actions are explored
//!   in ascending task id, and `process` is explored last,
//! * a configurable node budget; the result reports whether the search
//!   completed (proving optimality) or was truncated.

use spear_cluster::env::{Env, MultiJobEnv, SimEnv};
use spear_cluster::{Action, ClusterSpec, JobQueue, Schedule, SimState, SpearError};
use spear_dag::analysis;
use spear_dag::{Dag, TaskId};

use crate::{Scheduler, TetrisScheduler};

/// Configuration of [`BnBScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BnBConfig {
    /// Maximum search nodes before giving up on proving optimality.
    pub max_nodes: u64,
}

impl Default for BnBConfig {
    fn default() -> Self {
        BnBConfig {
            max_nodes: 2_000_000,
        }
    }
}

/// The result of an exact search.
#[derive(Debug, Clone, PartialEq)]
pub struct BnBOutcome {
    /// The best schedule found.
    pub schedule: Schedule,
    /// `true` if the search space was exhausted — the schedule is provably
    /// optimal.
    pub proved_optimal: bool,
    /// Nodes expanded.
    pub nodes: u64,
}

/// Exact branch-and-bound makespan minimization. Exponential; intended
/// for jobs of roughly ≤ 15 tasks (see [`BnBConfig::max_nodes`]).
#[derive(Debug, Clone, Default)]
pub struct BnBScheduler {
    config: BnBConfig,
}

impl BnBScheduler {
    /// Creates the scheduler with the default node budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the scheduler with a custom node budget.
    pub fn with_config(config: BnBConfig) -> Self {
        BnBScheduler { config }
    }

    /// Runs the exact search.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError`] if the DAG cannot run on the cluster.
    pub fn solve(&self, dag: &Dag, spec: &ClusterSpec) -> Result<BnBOutcome, SpearError> {
        // Incumbent: the greedy packer.
        let greedy = TetrisScheduler::new().schedule(dag, spec)?;
        let b_levels = analysis::b_levels(dag);
        let mut search = Search {
            dag,
            spec,
            b_levels,
            arrivals: None,
            best: greedy.makespan(),
            best_state: None,
            nodes: 0,
            max_nodes: self.config.max_nodes,
        };
        let root = SimEnv::new(dag, spec)?;
        let exhausted = search.dfs(&root)?;
        let schedule = match search.best_state {
            Some(state) => SimEnv::from_state(dag, spec, state).into_schedule()?,
            None => greedy,
        };
        Ok(BnBOutcome {
            schedule,
            proved_optimal: exhausted,
            nodes: search.nodes,
        })
    }

    /// Exact search over an arrival stream: the branch-and-bound explores
    /// the multi-job simulator's action space, so its optimum is the
    /// best *union makespan* any online scheduler could achieve on this
    /// stream (given full knowledge of future arrivals).
    ///
    /// # Errors
    ///
    /// Returns [`SpearError`] if any job cannot run on the cluster.
    pub fn solve_multi(
        &self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<BnBOutcome, SpearError> {
        let dag = queue.union_dag();
        let greedy = TetrisScheduler::new().schedule_multi(queue, spec)?;
        let b_levels = analysis::b_levels(dag);
        // Per-task release times tighten the bound: an unstarted task can
        // never start before its job arrives.
        let mut arrivals = vec![0u64; dag.len()];
        for span in queue.spans() {
            arrivals[span.first_task..span.first_task + span.tasks].fill(span.arrival);
        }
        let mut search = Search {
            dag,
            spec,
            b_levels,
            arrivals: Some(arrivals),
            best: greedy.makespan(),
            best_state: None,
            nodes: 0,
            max_nodes: self.config.max_nodes,
        };
        let root = MultiJobEnv::new(queue, spec)?;
        let exhausted = search.dfs(&root)?;
        let schedule = match search.best_state {
            Some(state) => SimEnv::from_state(dag, spec, state).into_schedule()?,
            None => greedy,
        };
        Ok(BnBOutcome {
            schedule,
            proved_optimal: exhausted,
            nodes: search.nodes,
        })
    }
}

impl Scheduler for BnBScheduler {
    fn name(&self) -> &str {
        "bnb"
    }

    fn schedule(&mut self, dag: &Dag, spec: &ClusterSpec) -> Result<Schedule, SpearError> {
        Ok(self.solve(dag, spec)?.schedule)
    }

    fn schedule_multi(
        &mut self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<Schedule, SpearError> {
        Ok(self.solve_multi(queue, spec)?.schedule)
    }
}

struct Search<'a> {
    dag: &'a Dag,
    spec: &'a ClusterSpec,
    b_levels: Vec<u64>,
    /// Per-task release times (multi-job searches only); `None` keeps the
    /// single-job bound — and therefore the explored tree — bit-identical
    /// to what it was before arrivals existed.
    arrivals: Option<Vec<u64>>,
    best: u64,
    best_state: Option<SimState>,
    nodes: u64,
    max_nodes: u64,
}

impl Search<'_> {
    /// Lower bound on the completion time from `state`:
    /// * every unfinished-but-started task ends at its finish time, and
    ///   its not-yet-ready successors add their b-levels on top;
    /// * every ready/blocked task can start no earlier than now;
    /// * the remaining resource-time load per dimension must fit after
    ///   `clock`.
    ///
    /// On heterogeneous clusters the bound uses the *min-transfer
    /// relaxation*: every cross-machine edge delay is relaxed to
    /// [`spear_cluster::MachineSet::min_edge_delay`] (zero, since a child
    /// may always be co-located with its parent). Transfers can only delay
    /// starts relative to this relaxation, so the bound stays admissible,
    /// and the aggregate load bound relaxes per-machine capacities to
    /// their sum, which again only under-estimates the true makespan.
    fn lower_bound(&self, state: &SimState) -> u64 {
        let mut lb = state.max_finish();
        // Ready tasks: start >= clock.
        for &t in state.ready() {
            lb = lb.max(state.clock() + self.b_levels[t.index()]);
        }
        // Running tasks: children start >= finish.
        for run in state.running() {
            for &c in self.dag.children(run.task) {
                if state.start_of(c).is_none() {
                    lb = lb.max(run.finish + self.b_levels[c.index()]);
                }
            }
        }
        // Release-time bound (multi-job only): an unstarted task cannot
        // start before its job arrives, so it finishes no earlier than
        // arrival + b-level.
        if let Some(arrivals) = &self.arrivals {
            for t in self.dag.task_ids() {
                if state.start_of(t).is_none() {
                    lb = lb.max(arrivals[t.index()] + self.b_levels[t.index()]);
                }
            }
        }
        // Load bound over unscheduled tasks.
        for r in 0..self.spec.dims() {
            let mut load = 0.0;
            for t in self.dag.task_ids() {
                if state.start_of(t).is_none() {
                    load += self.dag.task(t).load(r);
                }
            }
            let cap = self.spec.capacity()[r];
            if cap > 0.0 {
                lb = lb.max(state.clock() + (load / cap).floor() as u64);
            }
        }
        lb
    }

    /// Returns `Ok(true)` if the subtree was fully explored within the
    /// node budget.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (legal actions never fail to apply, but
    /// the checked [`Env::step`] surfaces any violation as a typed error
    /// instead of panicking).
    fn dfs<E: Env + Clone>(&mut self, env: &E) -> Result<bool, SpearError> {
        if self.nodes >= self.max_nodes {
            return Ok(false);
        }
        self.nodes += 1;
        if env.is_terminal() {
            if let Some(makespan) = env.makespan() {
                if makespan < self.best {
                    self.best = makespan;
                    self.best_state = Some(env.observe().clone());
                }
            }
            return Ok(true);
        }
        if self.lower_bound(env.observe()) >= self.best {
            return Ok(true); // pruned, but fully accounted for
        }
        let mut exhausted = true;
        let mut actions = Vec::new();
        env.legal_into(&mut actions);
        // Schedule actions ascending by id; process last (already the
        // simulator's order, but make it explicit for the symmetry
        // argument).
        actions.sort_by_key(|a| match a {
            Action::Schedule(t) => (0, t.index(), 0),
            Action::Place(t, m) => (0, t.index(), *m as usize),
            Action::Process => (1, usize::MAX, usize::MAX),
        });
        for action in actions {
            let mut child = env.clone();
            child.step(action)?;
            exhausted &= self.dfs(&child)?;
            if self.nodes >= self.max_nodes {
                return Ok(false);
            }
        }
        Ok(exhausted)
    }
}

/// Convenience: the provably optimal makespan of a small job, or `None`
/// if the node budget was exhausted first.
///
/// # Errors
///
/// Returns [`SpearError`] if the DAG cannot run on the cluster.
pub fn optimal_makespan(
    dag: &Dag,
    spec: &ClusterSpec,
    max_nodes: u64,
) -> Result<Option<u64>, SpearError> {
    let outcome = BnBScheduler::with_config(BnBConfig { max_nodes }).solve(dag, spec)?;
    Ok(outcome.proved_optimal.then(|| outcome.schedule.makespan()))
}

/// Re-exported task id type used in this module's tests.
#[allow(unused)]
type Tid = TaskId;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spear_dag::generator::LayeredDagSpec;
    use spear_dag::{DagBuilder, ResourceVec, Task};

    #[test]
    fn solves_single_task() {
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(5, ResourceVec::from_slice(&[0.5])));
        let dag = b.build().unwrap();
        let outcome = BnBScheduler::new()
            .solve(&dag, &ClusterSpec::unit(1))
            .unwrap();
        assert!(outcome.proved_optimal);
        assert_eq!(outcome.schedule.makespan(), 5);
    }

    #[test]
    fn finds_complementary_pairing() {
        // Two cpu-heavy + two mem-heavy tasks: optimal pairs them across
        // resources, makespan 2T; any same-type pairing costs 3T+.
        let mut b = DagBuilder::new(2);
        for _ in 0..2 {
            b.add_task(Task::new(10, ResourceVec::from_slice(&[0.9, 0.05])));
        }
        for _ in 0..2 {
            b.add_task(Task::new(10, ResourceVec::from_slice(&[0.05, 0.9])));
        }
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(2);
        let outcome = BnBScheduler::new().solve(&dag, &spec).unwrap();
        assert!(outcome.proved_optimal);
        assert_eq!(outcome.schedule.makespan(), 20);
        outcome.schedule.validate(&dag, &spec).unwrap();
    }

    #[test]
    fn optimum_never_exceeds_any_heuristic() {
        let spec = ClusterSpec::unit(2);
        for seed in 0..4 {
            let dag = LayeredDagSpec {
                num_tasks: 8,
                ..LayeredDagSpec::paper_training()
            }
            .generate(&mut StdRng::seed_from_u64(seed));
            let outcome = BnBScheduler::new().solve(&dag, &spec).unwrap();
            assert!(outcome.proved_optimal, "seed {seed} did not finish");
            let opt = outcome.schedule.makespan();
            for mut h in [
                Box::new(TetrisScheduler::new()) as Box<dyn Scheduler>,
                Box::new(crate::SjfScheduler::new()),
                Box::new(crate::CpScheduler::new()),
                Box::new(crate::Graphene::new()),
            ] {
                assert!(h.schedule(&dag, &spec).unwrap().makespan() >= opt);
            }
            assert!(opt >= dag.makespan_lower_bound(spec.capacity()));
        }
    }

    #[test]
    fn node_budget_truncates_gracefully() {
        let dag = LayeredDagSpec {
            num_tasks: 12,
            ..LayeredDagSpec::paper_training()
        }
        .generate(&mut StdRng::seed_from_u64(9));
        let spec = ClusterSpec::unit(2);
        let outcome = BnBScheduler::with_config(BnBConfig { max_nodes: 50 })
            .solve(&dag, &spec)
            .unwrap();
        // Truncated search still returns a valid schedule (the greedy
        // incumbent at worst).
        assert!(!outcome.proved_optimal);
        outcome.schedule.validate(&dag, &spec).unwrap();
    }

    #[test]
    fn multi_job_optimum_respects_arrivals_and_bounds_heuristics() {
        // Job 0: one long task at t=0. Job 1: one short task at t=1.
        // Capacity forces serialization; the optimum runs the short task
        // in the arrival-created idle only if it fits — BnB proves the
        // best interleaving.
        let one_task = |runtime: u64, demand: f64| {
            let mut b = DagBuilder::new(1);
            b.add_task(Task::new(runtime, ResourceVec::from_slice(&[demand])));
            b.build().unwrap()
        };
        let queue = JobQueue::new(vec![
            (0, one_task(4, 0.6)),
            (1, one_task(2, 0.6)),
            (3, one_task(1, 0.6)),
        ])
        .unwrap();
        let spec = ClusterSpec::unit(1);
        let outcome = BnBScheduler::new().solve_multi(&queue, &spec).unwrap();
        assert!(outcome.proved_optimal);
        let s = &outcome.schedule;
        s.validate(queue.union_dag(), &spec).unwrap();
        for span in queue.spans() {
            for i in span.first_task..span.first_task + span.tasks {
                assert!(s.placement_of(Tid::new(i)).unwrap().start >= span.arrival);
            }
        }
        // No heuristic beats the proven optimum on the same stream.
        for mut h in [
            Box::new(TetrisScheduler::new()) as Box<dyn Scheduler>,
            Box::new(crate::SjfScheduler::new()),
            Box::new(crate::CpScheduler::new()),
            Box::new(crate::Graphene::new()),
        ] {
            let hs = h.schedule_multi(&queue, &spec).unwrap();
            assert!(hs.makespan() >= s.makespan(), "{} beat BnB", h.name());
        }
    }

    #[test]
    fn optimal_makespan_helper() {
        let mut b = DagBuilder::new(1);
        let a = b.add_task(Task::new(3, ResourceVec::from_slice(&[1.0])));
        let c = b.add_task(Task::new(4, ResourceVec::from_slice(&[1.0])));
        b.add_edge(a, c).unwrap();
        let dag = b.build().unwrap();
        assert_eq!(
            optimal_makespan(&dag, &ClusterSpec::unit(1), 10_000).unwrap(),
            Some(7)
        );
        // Even with a single node the bound already proves the greedy
        // incumbent optimal on this trivial chain (pruning counts as a
        // fully-explored subtree).
        assert_eq!(
            optimal_makespan(&dag, &ClusterSpec::unit(1), 1).unwrap(),
            Some(7)
        );
    }
}
