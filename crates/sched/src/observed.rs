//! Per-scheduler decision-latency instrumentation.
//!
//! [`ObservedScheduler`] wraps any [`Scheduler`] and records how long each
//! `schedule` call takes into the `sched.<name>.schedule_ns` histogram,
//! plus a `sched.<name>.schedules` call counter and the resulting
//! makespan as `sched.<name>.makespan`. The wrapper never changes the
//! wrapped scheduler's output — it only times the call — so it is safe to
//! drop into any experiment without perturbing results.

use spear_cluster::{ClusterSpec, JobQueue, Schedule, SpearError};
use spear_dag::Dag;
use spear_obs::{Counter, Gauge, Histogram, Obs};

use crate::Scheduler;

/// Instrument handles for one wrapped scheduler, keyed by its name.
#[derive(Debug, Clone)]
struct SchedObs {
    schedules: Counter,
    schedule_ns: Histogram,
    makespan: Gauge,
}

impl SchedObs {
    fn new(obs: &Obs, name: &str) -> Self {
        SchedObs {
            schedules: obs.counter(&format!("sched.{name}.schedules")),
            schedule_ns: obs.histogram(&format!("sched.{name}.schedule_ns")),
            makespan: obs.gauge(&format!("sched.{name}.makespan")),
        }
    }
}

/// Wraps a [`Scheduler`], recording per-call latency and makespan into a
/// metric sink (see the module docs for the metric names).
///
/// ```
/// use spear_obs::{MetricsRegistry, Obs};
/// use spear_sched::{ObservedScheduler, Scheduler, TetrisScheduler};
/// use spear_dag::generator::LayeredDagSpec;
/// use spear_cluster::ClusterSpec;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), spear_cluster::SpearError> {
/// let registry = MetricsRegistry::new();
/// let dag = LayeredDagSpec::paper_training()
///     .generate(&mut rand::rngs::StdRng::seed_from_u64(1));
/// let mut sched =
///     ObservedScheduler::new(TetrisScheduler::new(), &registry.sink("baselines"));
/// let schedule = sched.schedule(&dag, &ClusterSpec::unit(2))?;
/// let snapshot = registry.snapshot();
/// if spear_obs::compiled() {
///     assert_eq!(snapshot.counter_value("sched.tetris.schedules"), Some(1));
///     assert_eq!(
///         snapshot.gauge_last("sched.tetris.makespan"),
///         Some(schedule.makespan() as f64),
///     );
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ObservedScheduler<S> {
    inner: S,
    sched_obs: Option<SchedObs>,
}

impl<S: Scheduler> ObservedScheduler<S> {
    /// Wraps `inner`, registering its instruments in `obs` (named after
    /// `inner.name()`). With a [`Obs::noop`] sink — or in a build without
    /// the `obs` feature — the wrapper is inert and adds only the cost of
    /// a skipped branch per call.
    pub fn new(inner: S, obs: &Obs) -> Self {
        let sched_obs =
            (spear_obs::compiled() && obs.is_enabled()).then(|| SchedObs::new(obs, inner.name()));
        ObservedScheduler { inner, sched_obs }
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps back into the inner scheduler.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Scheduler> Scheduler for ObservedScheduler<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn schedule(&mut self, dag: &Dag, spec: &ClusterSpec) -> Result<Schedule, SpearError> {
        let span = if spear_obs::compiled() {
            self.sched_obs
                .as_ref()
                .map(|so| so.schedule_ns.start_span())
        } else {
            None
        };
        let result = self.inner.schedule(dag, spec);
        drop(span);
        if spear_obs::compiled() {
            if let (Some(so), Ok(schedule)) = (&self.sched_obs, &result) {
                so.schedules.incr();
                so.makespan.set(schedule.makespan() as f64);
            }
        }
        result
    }

    fn schedule_multi(
        &mut self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<Schedule, SpearError> {
        let span = if spear_obs::compiled() {
            self.sched_obs
                .as_ref()
                .map(|so| so.schedule_ns.start_span())
        } else {
            None
        };
        let result = self.inner.schedule_multi(queue, spec);
        drop(span);
        if spear_obs::compiled() {
            if let (Some(so), Ok(schedule)) = (&self.sched_obs, &result) {
                so.schedules.incr();
                so.makespan.set(schedule.makespan() as f64);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpScheduler, TetrisScheduler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spear_dag::generator::LayeredDagSpec;
    use spear_obs::MetricsRegistry;

    fn dag() -> Dag {
        LayeredDagSpec {
            num_tasks: 16,
            ..LayeredDagSpec::paper_training()
        }
        .generate(&mut StdRng::seed_from_u64(7))
    }

    #[test]
    fn wrapper_is_transparent() {
        let dag = dag();
        let spec = ClusterSpec::unit(2);
        let plain = TetrisScheduler::new().schedule(&dag, &spec).unwrap();
        let registry = MetricsRegistry::new();
        let mut wrapped = ObservedScheduler::new(TetrisScheduler::new(), &registry.sink("t"));
        let observed = wrapped.schedule(&dag, &spec).unwrap();
        assert_eq!(plain, observed, "instrumentation changed the schedule");
        assert_eq!(wrapped.name(), "tetris");
    }

    #[test]
    fn records_per_scheduler_latency() {
        if !spear_obs::compiled() {
            return;
        }
        let dag = dag();
        let spec = ClusterSpec::unit(2);
        let registry = MetricsRegistry::new();
        let sink = registry.sink("baselines");
        let mut tetris = ObservedScheduler::new(TetrisScheduler::new(), &sink);
        let mut cp = ObservedScheduler::new(CpScheduler::new(), &sink);
        tetris.schedule(&dag, &spec).unwrap();
        tetris.schedule(&dag, &spec).unwrap();
        cp.schedule(&dag, &spec).unwrap();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter_value("sched.tetris.schedules"), Some(2));
        assert_eq!(snapshot.counter_value("sched.cp.schedules"), Some(1));
        assert_eq!(
            snapshot.histogram_count("sched.tetris.schedule_ns"),
            Some(2)
        );
        assert!(snapshot.gauge_last("sched.cp.makespan").unwrap() > 0.0);
    }

    #[test]
    fn noop_sink_is_inert() {
        let dag = dag();
        let spec = ClusterSpec::unit(2);
        let mut wrapped = ObservedScheduler::new(CpScheduler::new(), &spear_obs::Obs::noop());
        let s = wrapped.schedule(&dag, &spec).unwrap();
        s.validate(&dag, &spec).unwrap();
        assert!(wrapped.sched_obs.is_none());
        let inner = wrapped.into_inner();
        assert_eq!(inner.name(), "cp");
    }
}
