//! Generic greedy list scheduling.
//!
//! Every heuristic baseline is the same greedy loop with a different
//! priority: while some ready task fits the free capacity, schedule the
//! highest-scoring one; otherwise process the cluster. The loop is the
//! resource- and dependency-aware *executor*; the [`TaskScorer`] is the
//! *policy*.

use spear_cluster::env::{Env, EnvContext, EpisodeDriver, FnPolicy, MultiJobEnv, NoRng, SimEnv};
use spear_cluster::{Action, ClusterSpec, JobQueue, Schedule, SimState, SpearError};
use spear_dag::analysis::GraphFeatures;
use spear_dag::{Dag, TaskId};
use spear_obs::Obs;

use crate::Scheduler;

/// Everything a [`TaskScorer`] may inspect when ranking a candidate task.
#[derive(Debug)]
pub struct ScoreContext<'a> {
    /// The job being scheduled.
    pub dag: &'a Dag,
    /// The current simulation state (clock, free capacity, running set).
    pub state: &'a SimState,
    /// Precomputed static graph features (b-level, b-load, children).
    pub features: &'a GraphFeatures,
}

/// Ranks ready-and-fitting tasks for the greedy list scheduler; the task
/// with the highest score is scheduled next. Ties break toward the lower
/// task id, keeping every scheduler deterministic.
pub trait TaskScorer {
    /// Scheduler name for reports.
    fn name(&self) -> &str;

    /// Score of scheduling `task` now; higher runs first.
    fn score(&mut self, ctx: &ScoreContext<'_>, task: TaskId) -> f64;
}

/// The greedy list scheduler: repeatedly schedules the best-scoring ready
/// task that fits, processing the cluster only when nothing fits.
///
/// ```
/// use spear_dag::{DagBuilder, Task, ResourceVec, TaskId};
/// use spear_cluster::ClusterSpec;
/// use spear_sched::{PriorityListScheduler, ScoreContext, Scheduler, TaskScorer};
///
/// /// Prefers higher task ids — a deliberately silly policy.
/// struct Backwards;
/// impl TaskScorer for Backwards {
///     fn name(&self) -> &str { "backwards" }
///     fn score(&mut self, _ctx: &ScoreContext<'_>, task: TaskId) -> f64 {
///         task.index() as f64
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DagBuilder::new(1);
/// b.add_task(Task::new(1, ResourceVec::from_slice(&[1.0])));
/// b.add_task(Task::new(1, ResourceVec::from_slice(&[1.0])));
/// let dag = b.build()?;
/// let schedule = PriorityListScheduler::new(Backwards)
///     .schedule(&dag, &ClusterSpec::unit(1))?;
/// // Task 1 was scheduled first.
/// assert_eq!(schedule.placement_of(TaskId::new(1)).unwrap().start, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PriorityListScheduler<S> {
    scorer: S,
    obs: Obs,
}

impl<S: TaskScorer> PriorityListScheduler<S> {
    /// Wraps a scorer into a full scheduler.
    pub fn new(scorer: S) -> Self {
        PriorityListScheduler {
            scorer,
            obs: Obs::noop(),
        }
    }

    /// Attaches a metric sink: every driven episode records the `sim.*`
    /// family through its [`EpisodeDriver`]. Pass [`Obs::noop`] to detach.
    #[must_use]
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.set_obs(obs);
        self
    }

    /// In-place variant of [`PriorityListScheduler::with_obs`].
    pub fn set_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
    }

    /// Access to the wrapped scorer.
    pub fn scorer(&self) -> &S {
        &self.scorer
    }
}

impl<S: TaskScorer> PriorityListScheduler<S> {
    /// Drives any env to termination with the greedy scoring policy.
    fn drive_env<E: Env>(&mut self, env: &mut E) -> Result<(), SpearError> {
        let features = GraphFeatures::compute(env.dag());
        let scorer = &mut self.scorer;
        // The legal `Schedule` actions are exactly the ready-and-fitting
        // candidates, already in ascending task-id order; the greedy policy
        // just ranks them (strict `>` keeps ties on the lowest id).
        let policy = FnPolicy(|ctx: &EnvContext<'_>, state: &SimState, legal: &[Action]| {
            let score_ctx = ScoreContext {
                dag: ctx.dag,
                state,
                features: &features,
            };
            select_best(ctx.dag, state, legal, |t| scorer.score(&score_ctx, t))
        });
        EpisodeDriver::new(policy)
            .with_obs(&self.obs)
            .drive(env, &mut NoRng, u64::MAX)?;
        Ok(())
    }
}

impl<S: TaskScorer> Scheduler for PriorityListScheduler<S> {
    fn name(&self) -> &str {
        self.scorer.name()
    }

    fn schedule(&mut self, dag: &Dag, spec: &ClusterSpec) -> Result<Schedule, SpearError> {
        let mut env = SimEnv::new(dag, spec)?;
        self.drive_env(&mut env)?;
        env.into_schedule()
    }

    fn schedule_multi(
        &mut self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<Schedule, SpearError> {
        let mut env = MultiJobEnv::new(queue, spec)?;
        self.drive_env(&mut env)?;
        env.into_schedule()
    }
}

/// Fraction of `task`'s parents that ran on machine `m` — the locality
/// bonus of a `(task, machine)` pair. Placing a child next to its parents
/// keeps future data local; 0 for source tasks and on single-box states
/// (where every parent trivially shares the one machine anyway).
pub(crate) fn locality(dag: &Dag, state: &SimState, task: TaskId, m: u32) -> f64 {
    if !state.is_hetero() {
        return 0.0;
    }
    let parents = dag.parents(task);
    if parents.is_empty() {
        return 0.0;
    }
    let co = parents
        .iter()
        .filter(|&&p| state.machine_of(p) == Some(m))
        .count();
    co as f64 / parents.len() as f64
}

/// Picks the scheduling action with the highest task score, breaking score
/// ties toward the better machine locality and remaining ties toward the
/// slice order (lowest task id, then lowest machine id), or `Process` when
/// nothing fits. On heterogeneous clusters this ranks the full
/// `(task, machine)` product the legal list spells out.
fn select_best<F: FnMut(TaskId) -> f64>(
    dag: &Dag,
    state: &SimState,
    legal: &[Action],
    mut score: F,
) -> Action {
    let mut best: Option<(Action, f64, f64)> = None;
    let mut last_task: Option<(TaskId, f64)> = None;
    for &action in legal {
        let Some(t) = action.task() else {
            continue;
        };
        // The legal list is task-major, so the score of a task with
        // several feasible machines is computed once.
        let s = match last_task {
            Some((lt, ls)) if lt == t => ls,
            _ => {
                let s = score(t);
                last_task = Some((t, s));
                s
            }
        };
        let loc = action.machine().map_or(0.0, |m| locality(dag, state, t, m));
        let better = match best {
            Some((_, bs, bl)) => s > bs || (s == bs && loc > bl),
            None => true,
        };
        if better {
            best = Some((action, s, loc));
        }
    }
    match best {
        Some((action, ..)) => action,
        None => Action::Process,
    }
}

/// Executes a fixed priority order dependency- and resource-aware: at every
/// decision point the earliest-in-order ready task that fits is scheduled.
///
/// This is Graphene's final stage (running the order derived from the
/// virtual placement through the real cluster) and is generally useful for
/// turning any total order of tasks into a valid schedule.
///
/// `order` must contain every task exactly once.
///
/// # Errors
///
/// Returns [`SpearError`] if the DAG cannot run on the cluster.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the DAG's tasks.
pub fn execute_priority_order(
    dag: &Dag,
    spec: &ClusterSpec,
    order: &[TaskId],
) -> Result<Schedule, SpearError> {
    let mut env = SimEnv::new(dag, spec)?;
    drive_priority_order(&mut env, order)?;
    env.into_schedule()
}

/// Multi-job counterpart of [`execute_priority_order`]: runs a total order
/// over the union DAG's tasks through a [`MultiJobEnv`], so a task is only
/// eligible once its job has arrived (on top of readiness and fit).
///
/// `order` must contain every task of the union DAG exactly once.
///
/// # Errors
///
/// Returns [`SpearError`] if any job cannot run on the cluster.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the union DAG's tasks.
pub fn execute_priority_order_multi(
    queue: &JobQueue,
    spec: &ClusterSpec,
    order: &[TaskId],
) -> Result<Schedule, SpearError> {
    let mut env = MultiJobEnv::new(queue, spec)?;
    drive_priority_order(&mut env, order)?;
    env.into_schedule()
}

/// Shared executor behind [`execute_priority_order`] and
/// [`execute_priority_order_multi`]: at every decision point the
/// earliest-in-order legal task is scheduled.
fn drive_priority_order<E: Env>(env: &mut E, order: &[TaskId]) -> Result<(), SpearError> {
    let dag = env.dag();
    assert_eq!(order.len(), dag.len(), "order must cover every task");
    let mut rank = vec![usize::MAX; dag.len()];
    for (i, &t) in order.iter().enumerate() {
        assert!(
            rank[t.index()] == usize::MAX,
            "order contains task {t} twice"
        );
        rank[t.index()] = i;
    }

    let policy = FnPolicy(|ctx: &EnvContext<'_>, state: &SimState, legal: &[Action]| {
        // Earliest-in-order task first; among a task's feasible machines
        // the highest parent locality wins (ties keep the slice order,
        // i.e. the lowest machine id).
        let mut best: Option<(Action, usize, f64)> = None;
        for &a in legal {
            let Some(t) = a.task() else {
                continue;
            };
            let r = rank[t.index()];
            let loc = a.machine().map_or(0.0, |m| locality(ctx.dag, state, t, m));
            let better = match best {
                Some((_, br, bl)) => r < br || (r == br && loc > bl),
                None => true,
            };
            if better {
                best = Some((a, r, loc));
            }
        }
        best.map_or(Action::Process, |(a, ..)| a)
    });
    EpisodeDriver::new(policy).drive(env, &mut NoRng, u64::MAX)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_dag::{DagBuilder, ResourceVec, Task};

    struct ById;
    impl TaskScorer for ById {
        fn name(&self) -> &str {
            "by-id"
        }
        fn score(&mut self, _ctx: &ScoreContext<'_>, task: TaskId) -> f64 {
            -(task.index() as f64)
        }
    }

    fn three_independent() -> Dag {
        let mut b = DagBuilder::new(1);
        for _ in 0..3 {
            b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])));
        }
        b.build().unwrap()
    }

    #[test]
    fn list_scheduler_serializes_when_capacity_tight() {
        let dag = three_independent();
        let s = PriorityListScheduler::new(ById)
            .schedule(&dag, &ClusterSpec::unit(1))
            .unwrap();
        assert_eq!(s.makespan(), 6);
        s.validate(&dag, &ClusterSpec::unit(1)).unwrap();
        // Scheduled in id order.
        for i in 0..3 {
            assert_eq!(s.placement_of(TaskId::new(i)).unwrap().start, 2 * i as u64);
        }
    }

    #[test]
    fn list_scheduler_packs_when_capacity_allows() {
        let dag = three_independent();
        let spec = spear_cluster::ClusterSpec::new(ResourceVec::from_slice(&[1.3])).unwrap();
        let s = PriorityListScheduler::new(ById)
            .schedule(&dag, &spec)
            .unwrap();
        assert_eq!(s.makespan(), 4); // two in parallel (1.2 <= 1.3), then one
        s.validate(&dag, &spec).unwrap();
    }

    #[test]
    fn tie_break_is_lowest_id() {
        struct Constant;
        impl TaskScorer for Constant {
            fn name(&self) -> &str {
                "constant"
            }
            fn score(&mut self, _ctx: &ScoreContext<'_>, _task: TaskId) -> f64 {
                1.0
            }
        }
        let dag = three_independent();
        let s = PriorityListScheduler::new(Constant)
            .schedule(&dag, &ClusterSpec::unit(1))
            .unwrap();
        assert_eq!(s.placement_of(TaskId::new(0)).unwrap().start, 0);
    }

    #[test]
    fn execute_order_respects_dependencies() {
        // 0 -> 1; order says 1 first, but 1 is not ready, so 0 runs first.
        let mut b = DagBuilder::new(1);
        let a = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
        let c = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
        b.add_edge(a, c).unwrap();
        let dag = b.build().unwrap();
        let s = execute_priority_order(&dag, &ClusterSpec::unit(1), &[c, a]).unwrap();
        assert_eq!(s.placement_of(a).unwrap().start, 0);
        assert_eq!(s.placement_of(c).unwrap().start, 2);
        s.validate(&dag, &ClusterSpec::unit(1)).unwrap();
    }

    #[test]
    fn execute_order_follows_order_among_ready() {
        let dag = three_independent();
        let order = [TaskId::new(2), TaskId::new(0), TaskId::new(1)];
        let s = execute_priority_order(&dag, &ClusterSpec::unit(1), &order).unwrap();
        assert_eq!(s.placement_of(TaskId::new(2)).unwrap().start, 0);
        assert_eq!(s.placement_of(TaskId::new(0)).unwrap().start, 2);
        assert_eq!(s.placement_of(TaskId::new(1)).unwrap().start, 4);
    }

    #[test]
    #[should_panic(expected = "order must cover every task")]
    fn execute_order_rejects_short_order() {
        let dag = three_independent();
        let _ = execute_priority_order(&dag, &ClusterSpec::unit(1), &[TaskId::new(0)]);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn execute_order_rejects_duplicates() {
        let dag = three_independent();
        let order = [TaskId::new(0), TaskId::new(0), TaskId::new(1)];
        let _ = execute_priority_order(&dag, &ClusterSpec::unit(1), &order);
    }

    #[test]
    fn multi_job_schedule_respects_arrivals() {
        let queue =
            JobQueue::new(vec![(0, three_independent()), (4, three_independent())]).unwrap();
        let spec = ClusterSpec::unit(1);
        let s = PriorityListScheduler::new(ById)
            .schedule_multi(&queue, &spec)
            .unwrap();
        s.validate(queue.union_dag(), &spec).unwrap();
        for span in queue.spans() {
            for i in span.first_task..span.first_task + span.tasks {
                let start = s.placement_of(TaskId::new(i)).unwrap().start;
                assert!(start >= span.arrival, "task {i} started before arrival");
            }
        }
        let report = queue.jct_report(&s);
        assert_eq!(report.completions().len(), 2);
        assert_eq!(report.unfinished(), 0);
    }

    #[test]
    fn degenerate_single_job_queue_matches_schedule() {
        let dag = three_independent();
        let spec = ClusterSpec::unit(1);
        let single = PriorityListScheduler::new(ById)
            .schedule(&dag, &spec)
            .unwrap();
        let queue = JobQueue::single(dag).unwrap();
        let multi = PriorityListScheduler::new(ById)
            .schedule_multi(&queue, &spec)
            .unwrap();
        assert_eq!(single, multi);
    }

    #[test]
    fn execute_order_multi_gates_on_arrival() {
        // The order begs for the late job first, but it cannot start
        // before t=3; the earlier job fills the gap.
        let one_task = |runtime: u64| {
            let mut b = DagBuilder::new(1);
            b.add_task(Task::new(runtime, ResourceVec::from_slice(&[0.9])));
            b.build().unwrap()
        };
        let queue = JobQueue::new(vec![(0, one_task(2)), (3, one_task(2))]).unwrap();
        let spec = ClusterSpec::unit(1);
        let order = [TaskId::new(1), TaskId::new(0)];
        let s = execute_priority_order_multi(&queue, &spec, &order).unwrap();
        assert_eq!(s.placement_of(TaskId::new(0)).unwrap().start, 0);
        assert_eq!(s.placement_of(TaskId::new(1)).unwrap().start, 3);
    }
}
