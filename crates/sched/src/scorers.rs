//! The heuristic baseline schedulers: Tetris, SJF, CP and Random.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spear_cluster::{ClusterSpec, JobQueue, Schedule, SpearError};
use spear_dag::{Dag, TaskId};

use crate::{PriorityListScheduler, Scheduler, ScoreContext, TaskScorer};

/// Tetris (Grandl et al., SIGCOMM 2014): packs the ready task whose demand
/// vector is best *aligned* with the free capacity — the dot product
/// `demand · free`. Dependency-oblivious beyond readiness, which is exactly
/// the weakness the paper's motivating example exploits.
#[derive(Debug, Clone, Default)]
pub struct TetrisScorer;

impl TaskScorer for TetrisScorer {
    fn name(&self) -> &str {
        "tetris"
    }

    fn score(&mut self, ctx: &ScoreContext<'_>, task: TaskId) -> f64 {
        ctx.dag.task(task).demand().dot(ctx.state.free())
    }
}

/// Shortest Job First: the ready task with the smallest runtime wins.
#[derive(Debug, Clone, Default)]
pub struct SjfScorer;

impl TaskScorer for SjfScorer {
    fn name(&self) -> &str {
        "sjf"
    }

    fn score(&mut self, ctx: &ScoreContext<'_>, task: TaskId) -> f64 {
        -(ctx.dag.task(task).runtime() as f64)
    }
}

/// Largest Critical Path first: ranks ready tasks by b-level (the longest
/// runtime path to an exit), breaking ties by child count — the classic
/// dependency-aware list heuristic (and the expert imitated during the DRL
/// agent's supervised pre-training).
#[derive(Debug, Clone, Default)]
pub struct CpScorer;

impl TaskScorer for CpScorer {
    fn name(&self) -> &str {
        "cp"
    }

    fn score(&mut self, ctx: &ScoreContext<'_>, task: TaskId) -> f64 {
        let f = ctx.features.task(task);
        // b-level dominates; child count breaks ties (both integers, so a
        // sub-integer weight keeps them lexicographic).
        f.b_level as f64 + f.children as f64 / 1e6
    }
}

/// Uniformly random scores — the sanity-check floor every real scheduler
/// must beat.
#[derive(Debug, Clone)]
pub struct RandomScorer {
    rng: StdRng,
}

impl RandomScorer {
    /// Creates a scorer with the given RNG seed.
    pub fn seeded(seed: u64) -> Self {
        RandomScorer {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl TaskScorer for RandomScorer {
    fn name(&self) -> &str {
        "random"
    }

    fn score(&mut self, _ctx: &ScoreContext<'_>, _task: TaskId) -> f64 {
        self.rng.gen()
    }
}

macro_rules! wrap_scheduler {
    ($(#[$doc:meta])* $name:ident, $scorer:ty, $ctor:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            inner: PriorityListScheduler<$scorer>,
        }

        impl $name {
            /// Creates the scheduler.
            #[allow(clippy::new_without_default)]
            pub fn new() -> Self {
                $name {
                    inner: PriorityListScheduler::new($ctor),
                }
            }

            /// Attaches a metric sink: every episode records the `sim.*`
            /// family. Pass [`spear_obs::Obs::noop`] to detach.
            #[must_use]
            pub fn with_obs(mut self, obs: &spear_obs::Obs) -> Self {
                self.inner.set_obs(obs);
                self
            }
        }

        impl Scheduler for $name {
            fn name(&self) -> &str {
                self.inner.scorer().name()
            }

            fn schedule(
                &mut self,
                dag: &Dag,
                spec: &ClusterSpec,
            ) -> Result<Schedule, SpearError> {
                self.inner.schedule(dag, spec)
            }

            fn schedule_multi(
                &mut self,
                queue: &JobQueue,
                spec: &ClusterSpec,
            ) -> Result<Schedule, SpearError> {
                self.inner.schedule_multi(queue, spec)
            }
        }
    };
}

wrap_scheduler!(
    /// The Tetris packing scheduler. See [`TetrisScorer`].
    ///
    /// ```
    /// use spear_sched::{Scheduler, TetrisScheduler};
    /// assert_eq!(TetrisScheduler::new().name(), "tetris");
    /// ```
    TetrisScheduler,
    TetrisScorer,
    TetrisScorer
);
wrap_scheduler!(
    /// The Shortest-Job-First scheduler. See [`SjfScorer`].
    SjfScheduler,
    SjfScorer,
    SjfScorer
);
wrap_scheduler!(
    /// The largest-Critical-Path scheduler. See [`CpScorer`].
    CpScheduler,
    CpScorer,
    CpScorer
);

impl Default for TetrisScheduler {
    fn default() -> Self {
        Self::new()
    }
}
impl Default for SjfScheduler {
    fn default() -> Self {
        Self::new()
    }
}
impl Default for CpScheduler {
    fn default() -> Self {
        Self::new()
    }
}

/// The random scheduler. See [`RandomScorer`].
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    inner: PriorityListScheduler<RandomScorer>,
}

impl RandomScheduler {
    /// Creates a random scheduler with a fixed RNG seed.
    pub fn seeded(seed: u64) -> Self {
        RandomScheduler {
            inner: PriorityListScheduler::new(RandomScorer::seeded(seed)),
        }
    }

    /// Attaches a metric sink: every episode records the `sim.*` family.
    /// Pass [`spear_obs::Obs::noop`] to detach.
    #[must_use]
    pub fn with_obs(mut self, obs: &spear_obs::Obs) -> Self {
        self.inner.set_obs(obs);
        self
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &str {
        "random"
    }

    fn schedule(&mut self, dag: &Dag, spec: &ClusterSpec) -> Result<Schedule, SpearError> {
        self.inner.schedule(dag, spec)
    }

    fn schedule_multi(
        &mut self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<Schedule, SpearError> {
        self.inner.schedule_multi(queue, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_dag::{DagBuilder, ResourceVec, Task};

    fn spec2() -> ClusterSpec {
        ClusterSpec::unit(2)
    }

    /// Two ready tasks: a CPU-shaped one and a memory-shaped one; free
    /// space is CPU-rich. Tetris must pick the CPU-shaped task.
    #[test]
    fn tetris_prefers_aligned_task() {
        let mut b = DagBuilder::new(2);
        // Occupier consumes most memory, leaving CPU-rich free space.
        let occupier = b.add_task(Task::new(10, ResourceVec::from_slice(&[0.1, 0.7])));
        let cpu_task = b.add_task(Task::new(5, ResourceVec::from_slice(&[0.6, 0.1])));
        let mem_task = b.add_task(Task::new(5, ResourceVec::from_slice(&[0.1, 0.3])));
        let _ = occupier;
        let dag = b.build().unwrap();
        let s = TetrisScheduler::new().schedule(&dag, &spec2()).unwrap();
        // Occupier (t0) has the largest alignment at t=0 (free = [1,1],
        // score 0.8 vs 0.7 vs 0.4), then the CPU task fits the CPU-rich
        // remainder better than the memory task.
        assert_eq!(s.placement_of(occupier).unwrap().start, 0);
        assert!(s.placement_of(cpu_task).unwrap().start <= s.placement_of(mem_task).unwrap().start);
        s.validate(&dag, &spec2()).unwrap();
    }

    #[test]
    fn sjf_runs_shortest_first() {
        let mut b = DagBuilder::new(1);
        let long = b.add_task(Task::new(9, ResourceVec::from_slice(&[0.9])));
        let short = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.9])));
        let dag = b.build().unwrap();
        let s = SjfScheduler::new()
            .schedule(&dag, &ClusterSpec::unit(1))
            .unwrap();
        assert_eq!(s.placement_of(short).unwrap().start, 0);
        assert_eq!(s.placement_of(long).unwrap().start, 1);
    }

    #[test]
    fn cp_runs_longest_chain_first() {
        // t0 heads a long chain; t1 is a lone long task. CP picks t0 first
        // even though t1 is longer, because t0's b-level is larger.
        let mut b = DagBuilder::new(1);
        let head = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.9])));
        let _lone = b.add_task(Task::new(5, ResourceVec::from_slice(&[0.9])));
        let mid = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.9])));
        let tail = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.9])));
        b.add_edge(head, mid).unwrap();
        b.add_edge(mid, tail).unwrap();
        let dag = b.build().unwrap();
        let s = CpScheduler::new()
            .schedule(&dag, &ClusterSpec::unit(1))
            .unwrap();
        assert_eq!(s.placement_of(head).unwrap().start, 0);
        s.validate(&dag, &ClusterSpec::unit(1)).unwrap();
    }

    #[test]
    fn cp_breaks_ties_by_child_count() {
        // Two tasks with equal b-level; t1 has more children.
        let mut b = DagBuilder::new(1);
        let a = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])));
        let c = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])));
        let a_kid = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1])));
        let c_kid1 = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1])));
        let c_kid2 = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1])));
        b.add_edge(a, a_kid).unwrap();
        b.add_edge(c, c_kid1).unwrap();
        b.add_edge(c, c_kid2).unwrap();
        let dag = b.build().unwrap();
        let s = CpScheduler::new()
            .schedule(&dag, &ClusterSpec::unit(1))
            .unwrap();
        assert_eq!(s.placement_of(c).unwrap().start, 0);
        assert_eq!(s.placement_of(a).unwrap().start, 2);
    }

    #[test]
    fn random_is_seeded_and_deterministic() {
        let dag = {
            let mut b = DagBuilder::new(1);
            for _ in 0..10 {
                b.add_task(Task::new(2, ResourceVec::from_slice(&[0.4])));
            }
            b.build().unwrap()
        };
        let s1 = RandomScheduler::seeded(7)
            .schedule(&dag, &ClusterSpec::unit(1))
            .unwrap();
        let s2 = RandomScheduler::seeded(7)
            .schedule(&dag, &ClusterSpec::unit(1))
            .unwrap();
        assert_eq!(s1, s2);
        s1.validate(&dag, &ClusterSpec::unit(1)).unwrap();
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(TetrisScheduler::new().name(), "tetris");
        assert_eq!(SjfScheduler::new().name(), "sjf");
        assert_eq!(CpScheduler::new().name(), "cp");
        assert_eq!(RandomScheduler::seeded(0).name(), "random");
    }
}
