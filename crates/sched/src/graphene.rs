//! A from-scratch Graphene baseline (Grandl et al., OSDI 2016), as
//! described by the Spear paper.
//!
//! Graphene's key idea: identify the *troublesome* tasks (long-running
//! ones, selected by a runtime-fraction threshold), pack them into a
//! virtual resource-time space first — both **forward** (from time 0
//! upward) and **backward** (from a horizon downward) — then derive a total
//! order from the virtual placement and execute it on the real,
//! dependency-aware cluster. The best schedule over all `threshold ×
//! direction` combinations wins.
//!
//! The Spear paper criticizes two aspects faithfully reproduced here: the
//! dependence on the hand-tuned threshold set, and the fact that within the
//! troublesome group tasks are ordered purely by descending runtime,
//! ignoring multi-resource demands.

use serde::{Deserialize, Serialize};
use spear_cluster::{ClusterSpec, JobQueue, ResourceTimeline, Schedule, SpearError};
use spear_dag::{Dag, TaskId};

use crate::{execute_priority_order, execute_priority_order_multi, Scheduler};

/// Which end of the virtual resource-time space packing starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PackDirection {
    /// Place tasks at the earliest slot that fits, from time 0 upward.
    Forward,
    /// Place tasks at the latest slot that finishes by the horizon.
    Backward,
}

/// Tunable parameters of [`Graphene`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrapheneConfig {
    /// Runtime-fraction thresholds defining the troublesome set: a task is
    /// troublesome when `runtime >= threshold × max_runtime`. The paper
    /// sweeps `{0.2, 0.4, 0.6, 0.8}` and keeps the best result.
    pub runtime_thresholds: Vec<f64>,
    /// Optional demand threshold: additionally mark tasks troublesome when
    /// their largest demand fraction (vs. capacity) reaches this value.
    /// `None` reproduces the Spear paper's runtime-only description.
    pub demand_threshold: Option<f64>,
}

impl Default for GrapheneConfig {
    fn default() -> Self {
        GrapheneConfig {
            runtime_thresholds: vec![0.2, 0.4, 0.6, 0.8],
            demand_threshold: None,
        }
    }
}

/// The chosen parameterization of the winning Graphene schedule, reported
/// by [`Graphene::schedule_with_details`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrapheneChoice {
    /// The runtime threshold that produced the best schedule.
    pub threshold: f64,
    /// The packing direction that produced the best schedule.
    pub direction: PackDirection,
    /// Number of troublesome tasks under that threshold.
    pub troublesome: usize,
}

/// The Graphene scheduler. See the module documentation for the
/// algorithm.
///
/// ```
/// use rand::SeedableRng;
/// use spear_dag::generator::LayeredDagSpec;
/// use spear_cluster::ClusterSpec;
/// use spear_sched::{Graphene, Scheduler};
///
/// # fn main() -> Result<(), spear_cluster::SpearError> {
/// let dag = LayeredDagSpec::paper_training()
///     .generate(&mut rand::rngs::StdRng::seed_from_u64(5));
/// let spec = ClusterSpec::unit(2);
/// let schedule = Graphene::new().schedule(&dag, &spec)?;
/// schedule.validate(&dag, &spec)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graphene {
    config: GrapheneConfig,
}

impl Graphene {
    /// Creates Graphene with the paper's default threshold sweep.
    pub fn new() -> Self {
        Graphene::default()
    }

    /// Creates Graphene with a custom configuration.
    pub fn with_config(config: GrapheneConfig) -> Self {
        Graphene { config }
    }

    /// The troublesome set for a given runtime threshold: tasks whose
    /// runtime is at least `threshold × max_runtime` (plus optionally
    /// high-demand tasks).
    pub fn troublesome_tasks(&self, dag: &Dag, spec: &ClusterSpec, threshold: f64) -> Vec<TaskId> {
        let cutoff = threshold * dag.max_runtime() as f64;
        dag.task_ids()
            .filter(|&t| {
                let task = dag.task(t);
                if task.runtime() as f64 >= cutoff {
                    return true;
                }
                if let Some(dt) = self.config.demand_threshold {
                    let frac = (0..dag.dims())
                        .map(|r| task.demand()[r] / spec.capacity()[r])
                        .fold(0.0_f64, f64::max);
                    return frac >= dt;
                }
                false
            })
            .collect()
    }

    /// Derives a task order from a virtual (dependency-free) placement of
    /// the troublesome tasks first, then the rest, in the given direction.
    fn virtual_order(
        &self,
        dag: &Dag,
        spec: &ClusterSpec,
        troublesome: &[TaskId],
        direction: PackDirection,
    ) -> Vec<TaskId> {
        let mut is_troublesome = vec![false; dag.len()];
        for &t in troublesome {
            is_troublesome[t.index()] = true;
        }
        // Within each group: descending runtime, tie by id (the ordering
        // the Spear paper criticizes).
        let by_runtime_desc = |ids: &mut Vec<TaskId>, dag: &Dag| {
            ids.sort_by_key(|&t| (std::cmp::Reverse(dag.task(t).runtime()), t));
        };
        let mut group_t: Vec<TaskId> = troublesome.to_vec();
        let mut group_o: Vec<TaskId> = dag
            .task_ids()
            .filter(|t| !is_troublesome[t.index()])
            .collect();
        by_runtime_desc(&mut group_t, dag);
        by_runtime_desc(&mut group_o, dag);

        let mut timeline = ResourceTimeline::new(spec.capacity().clone());
        // A horizon comfortably large enough for any packing: serial work.
        let horizon = dag.total_work().max(1);
        let mut starts: Vec<(u64, usize, TaskId)> = Vec::with_capacity(dag.len());
        for (seq, &t) in group_t.iter().chain(group_o.iter()).enumerate() {
            let task = dag.task(t);
            let start = match direction {
                PackDirection::Forward => timeline.earliest_start(task.demand(), task.runtime(), 0),
                PackDirection::Backward => timeline
                    .latest_start(task.demand(), task.runtime(), horizon)
                    // Fragmented space near the horizon: fall back to the
                    // earliest fit (keeps the pass total).
                    .unwrap_or_else(|| timeline.earliest_start(task.demand(), task.runtime(), 0)),
            };
            timeline.place(task.demand(), start, task.runtime());
            starts.push((start, seq, t));
        }
        // Read the space bottom-up: earlier virtual start = earlier in the
        // order. For backward packing, later-placed tasks at the same slot
        // were squeezed in more urgently; prefer them on ties.
        match direction {
            PackDirection::Forward => starts.sort_by_key(|&(s, seq, _)| (s, seq)),
            PackDirection::Backward => {
                starts.sort_by_key(|&(s, seq, _)| (s, std::cmp::Reverse(seq)))
            }
        }
        starts.into_iter().map(|(_, _, t)| t).collect()
    }

    /// Like [`Scheduler::schedule`] but also reports which threshold and
    /// direction won — useful for ablations over the parameter sensitivity
    /// the Spear paper criticizes.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError`] if the DAG cannot run on the cluster.
    pub fn schedule_with_details(
        &self,
        dag: &Dag,
        spec: &ClusterSpec,
    ) -> Result<(Schedule, GrapheneChoice), SpearError> {
        spec.validate_dag(dag)?;
        let mut best: Option<(Schedule, GrapheneChoice)> = None;
        for &threshold in &self.config.runtime_thresholds {
            let troublesome = self.troublesome_tasks(dag, spec, threshold);
            for direction in [PackDirection::Forward, PackDirection::Backward] {
                let order = self.virtual_order(dag, spec, &troublesome, direction);
                let schedule = execute_priority_order(dag, spec, &order)?;
                let better = match &best {
                    Some((b, _)) => schedule.makespan() < b.makespan(),
                    None => true,
                };
                if better {
                    best = Some((
                        schedule,
                        GrapheneChoice {
                            threshold,
                            direction,
                            troublesome: troublesome.len(),
                        },
                    ));
                }
            }
        }
        Ok(best.expect("config has at least one threshold"))
    }

    /// Multi-job variant of [`Graphene::schedule_with_details`]: the
    /// troublesome sets and virtual orders are derived on the arrival
    /// stream's union DAG (the virtual packing ignores arrivals, exactly
    /// as it ignores dependencies), then every candidate order is executed
    /// arrival-aware through the multi-job simulator and the best real
    /// schedule wins.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError`] if any job cannot run on the cluster.
    pub fn schedule_multi_with_details(
        &self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<(Schedule, GrapheneChoice), SpearError> {
        let dag = queue.union_dag();
        spec.validate_dag(dag)?;
        let mut best: Option<(Schedule, GrapheneChoice)> = None;
        for &threshold in &self.config.runtime_thresholds {
            let troublesome = self.troublesome_tasks(dag, spec, threshold);
            for direction in [PackDirection::Forward, PackDirection::Backward] {
                let order = self.virtual_order(dag, spec, &troublesome, direction);
                let schedule = execute_priority_order_multi(queue, spec, &order)?;
                let better = match &best {
                    Some((b, _)) => schedule.makespan() < b.makespan(),
                    None => true,
                };
                if better {
                    best = Some((
                        schedule,
                        GrapheneChoice {
                            threshold,
                            direction,
                            troublesome: troublesome.len(),
                        },
                    ));
                }
            }
        }
        Ok(best.expect("config has at least one threshold"))
    }
}

impl Scheduler for Graphene {
    fn name(&self) -> &str {
        "graphene"
    }

    fn schedule(&mut self, dag: &Dag, spec: &ClusterSpec) -> Result<Schedule, SpearError> {
        Ok(self.schedule_with_details(dag, spec)?.0)
    }

    fn schedule_multi(
        &mut self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<Schedule, SpearError> {
        Ok(self.schedule_multi_with_details(queue, spec)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spear_dag::generator::LayeredDagSpec;
    use spear_dag::{DagBuilder, ResourceVec, Task};

    fn spec2() -> ClusterSpec {
        ClusterSpec::unit(2)
    }

    #[test]
    fn troublesome_set_shrinks_with_threshold() {
        let dag = LayeredDagSpec::paper_training().generate(&mut StdRng::seed_from_u64(1));
        let g = Graphene::new();
        let t02 = g.troublesome_tasks(&dag, &spec2(), 0.2).len();
        let t08 = g.troublesome_tasks(&dag, &spec2(), 0.8).len();
        assert!(t02 >= t08);
        assert!(t02 <= dag.len());
        // Threshold 0 marks everything troublesome.
        assert_eq!(g.troublesome_tasks(&dag, &spec2(), 0.0).len(), dag.len());
    }

    #[test]
    fn demand_threshold_adds_tasks() {
        let mut b = DagBuilder::new(2);
        b.add_task(Task::new(10, ResourceVec::from_slice(&[0.1, 0.1])));
        b.add_task(Task::new(1, ResourceVec::from_slice(&[0.9, 0.1])));
        let dag = b.build().unwrap();
        let plain = Graphene::new();
        assert_eq!(plain.troublesome_tasks(&dag, &spec2(), 0.8).len(), 1);
        let with_demand = Graphene::with_config(GrapheneConfig {
            runtime_thresholds: vec![0.8],
            demand_threshold: Some(0.5),
        });
        assert_eq!(with_demand.troublesome_tasks(&dag, &spec2(), 0.8).len(), 2);
    }

    #[test]
    fn schedules_are_valid_on_random_dags() {
        for seed in 0..5 {
            let dag = LayeredDagSpec::paper_training().generate(&mut StdRng::seed_from_u64(seed));
            let s = Graphene::new().schedule(&dag, &spec2()).unwrap();
            s.validate(&dag, &spec2()).unwrap();
            assert!(s.makespan() >= dag.critical_path_length());
        }
    }

    #[test]
    fn details_report_winning_parameters() {
        let dag = LayeredDagSpec::paper_training().generate(&mut StdRng::seed_from_u64(3));
        let (s, choice) = Graphene::new()
            .schedule_with_details(&dag, &spec2())
            .unwrap();
        assert!([0.2, 0.4, 0.6, 0.8].contains(&choice.threshold));
        assert!(choice.troublesome <= dag.len());
        s.validate(&dag, &spec2()).unwrap();
    }

    #[test]
    fn best_of_sweep_beats_or_ties_single_threshold() {
        let dag = LayeredDagSpec::paper_training().generate(&mut StdRng::seed_from_u64(9));
        let sweep = Graphene::new().schedule(&dag, &spec2()).unwrap();
        for thr in [0.2, 0.4, 0.6, 0.8] {
            let single = Graphene::with_config(GrapheneConfig {
                runtime_thresholds: vec![thr],
                demand_threshold: None,
            })
            .schedule(&dag, &spec2())
            .unwrap();
            assert!(sweep.makespan() <= single.makespan());
        }
    }

    #[test]
    fn single_task_dag() {
        let mut b = DagBuilder::new(2);
        b.add_task(Task::new(5, ResourceVec::from_slice(&[0.5, 0.5])));
        let dag = b.build().unwrap();
        let s = Graphene::new().schedule(&dag, &spec2()).unwrap();
        assert_eq!(s.makespan(), 5);
    }

    #[test]
    fn multi_job_sweep_respects_arrivals_and_beats_nothing_scheduled_early() {
        let jobs: Vec<(u64, Dag)> = [(0u64, 1u64), (6, 2), (9, 3)]
            .iter()
            .map(|&(arrival, seed)| {
                let dag = LayeredDagSpec {
                    num_tasks: 8,
                    ..LayeredDagSpec::paper_training()
                }
                .generate(&mut StdRng::seed_from_u64(seed));
                (arrival, dag)
            })
            .collect();
        let queue = JobQueue::new(jobs).unwrap();
        let mut g = Graphene::new();
        let s = g.schedule_multi(&queue, &spec2()).unwrap();
        s.validate(queue.union_dag(), &spec2()).unwrap();
        for span in queue.spans() {
            for i in span.first_task..span.first_task + span.tasks {
                assert!(s.placement_of(TaskId::new(i)).unwrap().start >= span.arrival);
            }
        }
        let report = queue.jct_report(&s);
        assert_eq!(report.completions().len(), 3);
        assert!(report.unfairness() >= 0.0);
    }

    #[test]
    fn forward_and_backward_orders_can_differ() {
        let dag = LayeredDagSpec::paper_simulation().generate(&mut StdRng::seed_from_u64(11));
        let g = Graphene::new();
        let trouble = g.troublesome_tasks(&dag, &spec2(), 0.4);
        let fwd = g.virtual_order(&dag, &spec2(), &trouble, PackDirection::Forward);
        let bwd = g.virtual_order(&dag, &spec2(), &trouble, PackDirection::Backward);
        assert_eq!(fwd.len(), dag.len());
        assert_eq!(bwd.len(), dag.len());
        assert_ne!(fwd, bwd, "directions should explore different orders");
    }
}
