//! Baseline DAG schedulers for the Spear reproduction.
//!
//! All schedulers implement the [`Scheduler`] trait and drive the
//! [`spear_cluster::SimState`] simulator, so every algorithm is compared on
//! the identical substrate:
//!
//! * [`TetrisScheduler`] — multi-resource packing by alignment score
//!   (dot-product of demand and free capacity), dependency-oblivious
//!   beyond readiness (Grandl et al., SIGCOMM 2014).
//! * [`SjfScheduler`] — Shortest Job First over ready tasks.
//! * [`CpScheduler`] — largest Critical Path (b-level) first, the classic
//!   list-scheduling heuristic, with child-count tiebreak.
//! * [`RandomScheduler`] — uniformly random choices; the sanity floor.
//! * [`Graphene`] — the state-of-the-art baseline: identifies troublesome
//!   tasks by runtime threshold, virtually packs them forward and backward
//!   in the resource-time space, and executes the best derived order.
//!
//! The generic machinery ([`PriorityListScheduler`], [`TaskScorer`],
//! [`execute_priority_order`]) is public so downstream crates (the DRL
//! expert, MCTS rollouts) can build their own greedy policies.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use spear_dag::generator::LayeredDagSpec;
//! use spear_cluster::ClusterSpec;
//! use spear_sched::{Scheduler, TetrisScheduler, CpScheduler};
//!
//! # fn main() -> Result<(), spear_cluster::SpearError> {
//! let dag = LayeredDagSpec::paper_training()
//!     .generate(&mut rand::rngs::StdRng::seed_from_u64(1));
//! let spec = ClusterSpec::unit(2);
//! let tetris = TetrisScheduler::new().schedule(&dag, &spec)?;
//! let cp = CpScheduler::new().schedule(&dag, &spec)?;
//! assert!(tetris.makespan() >= dag.critical_path_length());
//! assert!(cp.makespan() >= dag.critical_path_length());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bnb;
mod graphene;
mod list;
mod observed;
mod scorers;

pub use bnb::{BnBConfig, BnBOutcome, BnBScheduler};
pub use graphene::{Graphene, GrapheneConfig, PackDirection};
pub use list::{
    execute_priority_order, execute_priority_order_multi, PriorityListScheduler, ScoreContext,
    TaskScorer,
};
pub use observed::ObservedScheduler;
pub use scorers::{
    CpScheduler, CpScorer, RandomScheduler, RandomScorer, SjfScheduler, SjfScorer, TetrisScheduler,
    TetrisScorer,
};

use spear_cluster::{ClusterSpec, JobQueue, Schedule, SpearError};
use spear_dag::Dag;

/// A makespan-minimizing DAG scheduler.
///
/// Implementations take `&mut self` because several schedulers carry
/// internal RNG state. The returned [`Schedule`] always passes
/// [`Schedule::validate`] for the same `dag` and `spec`.
pub trait Scheduler {
    /// Human-readable name used in experiment reports (e.g. `"tetris"`).
    fn name(&self) -> &str;

    /// Produces a complete schedule of `dag` on `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError`] if the DAG cannot run on the cluster
    /// (dimension mismatch or an oversized task).
    fn schedule(&mut self, dag: &Dag, spec: &ClusterSpec) -> Result<Schedule, SpearError>;

    /// Produces a complete schedule of a continuous-arrival job stream on
    /// `spec` (the online multi-job setting).
    ///
    /// The returned schedule places every task of the [`JobQueue`]'s union
    /// DAG; no task starts before its job's arrival. Per-job completion
    /// times are recovered with [`JobQueue::jct_report`].
    ///
    /// # Errors
    ///
    /// Returns [`SpearError`] if any job cannot run on the cluster.
    fn schedule_multi(
        &mut self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<Schedule, SpearError>;
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn schedule(&mut self, dag: &Dag, spec: &ClusterSpec) -> Result<Schedule, SpearError> {
        (**self).schedule(dag, spec)
    }

    fn schedule_multi(
        &mut self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<Schedule, SpearError> {
        (**self).schedule_multi(queue, spec)
    }
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn schedule(&mut self, dag: &Dag, spec: &ClusterSpec) -> Result<Schedule, SpearError> {
        (**self).schedule(dag, spec)
    }

    fn schedule_multi(
        &mut self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<Schedule, SpearError> {
        (**self).schedule_multi(queue, spec)
    }
}

/// A quick greedy estimate of the makespan of `dag` on `spec`, produced by
/// the Tetris packer. The paper (§IV) uses this to scale the MCTS
/// exploration constant to the same order of magnitude as the exploitation
/// score.
///
/// # Errors
///
/// Returns [`SpearError`] if the DAG cannot run on the cluster.
pub fn greedy_makespan_estimate(dag: &Dag, spec: &ClusterSpec) -> Result<u64, SpearError> {
    Ok(TetrisScheduler::new().schedule(dag, spec)?.makespan())
}

/// Multi-job counterpart of [`greedy_makespan_estimate`]: the Tetris
/// packer's makespan over the whole arrival stream.
///
/// # Errors
///
/// Returns [`SpearError`] if any job cannot run on the cluster.
pub fn greedy_makespan_estimate_multi(
    queue: &JobQueue,
    spec: &ClusterSpec,
) -> Result<u64, SpearError> {
    Ok(TetrisScheduler::new()
        .schedule_multi(queue, spec)?
        .makespan())
}
