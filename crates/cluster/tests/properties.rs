//! Property tests for the cluster simulator: every completed simulation,
//! regardless of the (possibly adversarial) policy driving it, must produce
//! a valid schedule, and the simulator must be deterministic.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spear_cluster::{Action, ClusterSpec, ResourceTimeline, SimState};
use spear_dag::generator::LayeredDagSpec;
use spear_dag::{Dag, ResourceVec, FIT_EPSILON};

fn random_dag(num_tasks: usize, seed: u64) -> Dag {
    let spec = LayeredDagSpec {
        num_tasks,
        min_width: 1,
        max_width: 4,
        ..LayeredDagSpec::paper_simulation()
    };
    spec.generate(&mut StdRng::seed_from_u64(seed))
}

/// Drives a simulation with a seeded uniformly random policy.
fn run_random_policy(dag: &Dag, spec: &ClusterSpec, seed: u64) -> SimState {
    let mut sim = SimState::new(dag, spec).expect("dag fits cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    sim.run_with(dag, |_, actions| actions[rng.gen_range(0..actions.len())])
        .expect("legal actions never fail");
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any random action sequence drives the simulation to completion and
    /// yields a schedule passing full validation.
    #[test]
    fn random_policy_always_yields_valid_schedule(
        num_tasks in 1usize..40,
        dag_seed in any::<u64>(),
        policy_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let sim = run_random_policy(&dag, &spec, policy_seed);
        prop_assert!(sim.is_terminal(&dag));
        let makespan = sim.makespan().expect("terminal => makespan");
        let schedule = sim.into_schedule(&dag);
        prop_assert_eq!(schedule.makespan(), makespan);
        schedule.validate(&dag, &spec).unwrap();
    }

    /// The makespan respects the theoretical lower bound and the serial
    /// upper bound.
    #[test]
    fn makespan_within_theoretical_bounds(
        num_tasks in 1usize..30,
        dag_seed in any::<u64>(),
        policy_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let sim = run_random_policy(&dag, &spec, policy_seed);
        let ms = sim.makespan().unwrap();
        prop_assert!(ms >= dag.critical_path_length());
        prop_assert!(ms <= dag.total_work());
    }

    /// Determinism: the same policy seed reproduces the same schedule.
    #[test]
    fn simulation_is_deterministic(
        num_tasks in 1usize..25,
        dag_seed in any::<u64>(),
        policy_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let a = run_random_policy(&dag, &spec, policy_seed);
        let b = run_random_policy(&dag, &spec, policy_seed);
        prop_assert_eq!(a, b);
    }

    /// Legal actions are exactly the actions that `apply` accepts; all
    /// others are rejected without corrupting the state.
    #[test]
    fn legal_actions_match_apply(
        num_tasks in 1usize..20,
        dag_seed in any::<u64>(),
        policy_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let mut sim = SimState::new(&dag, &spec).unwrap();
        let mut rng = StdRng::seed_from_u64(policy_seed);
        while !sim.is_terminal(&dag) {
            let legal = sim.legal_actions(&dag);
            prop_assert!(!legal.is_empty());
            // Probe every conceivable action against the legal list.
            let mut all: Vec<Action> =
                dag.task_ids().map(Action::Schedule).collect();
            all.push(Action::Process);
            for &action in &all {
                let expected_ok = legal.contains(&action);
                let mut probe = sim.clone();
                let ok = probe.apply(&dag, action).is_ok();
                prop_assert_eq!(ok, expected_ok, "action {} legality mismatch", action);
            }
            let action = legal[rng.gen_range(0..legal.len())];
            sim.apply(&dag, action).unwrap();
        }
    }

    /// `apply` and `apply_legal` agree step for step: driving the same
    /// legal action sequence through both produces identical states (the
    /// binary-search readiness check behind `apply` and the
    /// `debug_assert`-only path of `apply_legal` can never diverge), and
    /// `can_schedule` agrees with the legality probe for every task.
    #[test]
    fn apply_and_apply_legal_agree(
        num_tasks in 1usize..20,
        dag_seed in any::<u64>(),
        policy_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let mut checked = SimState::new(&dag, &spec).unwrap();
        let mut trusted = checked.clone();
        let mut rng = StdRng::seed_from_u64(policy_seed);
        while !checked.is_terminal(&dag) {
            let legal = checked.legal_actions(&dag);
            prop_assert!(!legal.is_empty());
            for t in dag.task_ids() {
                prop_assert_eq!(
                    checked.can_schedule(&dag, t),
                    legal.contains(&Action::Schedule(t)),
                    "can_schedule({}) disagrees with legal_actions", t
                );
            }
            let action = legal[rng.gen_range(0..legal.len())];
            checked.apply(&dag, action).unwrap();
            trusted.apply_legal(&dag, action);
            prop_assert_eq!(&checked, &trusted, "states diverged after {}", action);
        }
        prop_assert!(trusted.is_terminal(&dag));
        prop_assert_eq!(checked.makespan(), trusted.makespan());
    }

    /// Free capacity accounting: at all times the free vector equals
    /// capacity minus the sum of running demands.
    #[test]
    fn free_capacity_accounting(
        num_tasks in 1usize..25,
        dag_seed in any::<u64>(),
        policy_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let mut sim = SimState::new(&dag, &spec).unwrap();
        let mut rng = StdRng::seed_from_u64(policy_seed);
        while !sim.is_terminal(&dag) {
            let mut used = ResourceVec::zeros(2);
            for r in sim.running() {
                used.add_assign(dag.task(r.task).demand());
            }
            let expect = spec.capacity().saturating_sub(&used);
            for r in 0..2 {
                prop_assert!((sim.free()[r] - expect[r]).abs() < 1e-6);
            }
            let legal = sim.legal_actions(&dag);
            let action = legal[rng.gen_range(0..legal.len())];
            sim.apply(&dag, action).unwrap();
        }
    }

    /// The clock never moves backwards and only advances on Process.
    #[test]
    fn clock_is_monotonic(
        num_tasks in 1usize..25,
        dag_seed in any::<u64>(),
        policy_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let mut sim = SimState::new(&dag, &spec).unwrap();
        let mut rng = StdRng::seed_from_u64(policy_seed);
        while !sim.is_terminal(&dag) {
            let before = sim.clock();
            let legal = sim.legal_actions(&dag);
            let action = legal[rng.gen_range(0..legal.len())];
            sim.apply(&dag, action).unwrap();
            match action {
                Action::Schedule(_) | Action::Place(..) => prop_assert_eq!(sim.clock(), before),
                Action::Process => prop_assert!(sim.clock() > before),
            }
        }
    }

    /// Timeline: placements found by earliest_start never overflow
    /// capacity.
    #[test]
    fn timeline_earliest_start_is_safe(
        demands in prop::collection::vec((0.05f64..1.0, 1u64..10), 1..30),
    ) {
        let mut tl = ResourceTimeline::new(ResourceVec::from_slice(&[1.0]));
        for (d, dur) in demands {
            let demand = ResourceVec::from_slice(&[d]);
            let start = tl.earliest_start(&demand, dur, 0);
            prop_assert!(tl.fits(&demand, start, dur));
            tl.place(&demand, start, dur);
        }
        // Post: no slot exceeds capacity.
        for s in 0..tl.horizon() {
            prop_assert!(tl.used_at(s)[0] <= 1.0 + FIT_EPSILON);
        }
    }

    /// Timeline: backward placements via latest_start are also safe and
    /// finish by their deadline.
    #[test]
    fn timeline_latest_start_is_safe(
        demands in prop::collection::vec((0.05f64..1.0, 1u64..10), 1..30),
        horizon in 64u64..256,
    ) {
        let mut tl = ResourceTimeline::new(ResourceVec::from_slice(&[1.0]));
        for (d, dur) in demands {
            let demand = ResourceVec::from_slice(&[d]);
            if let Some(start) = tl.latest_start(&demand, dur, horizon) {
                prop_assert!(start + dur <= horizon);
                prop_assert!(tl.fits(&demand, start, dur));
                tl.place(&demand, start, dur);
            }
        }
        for s in 0..tl.horizon() {
            prop_assert!(tl.used_at(s)[0] <= 1.0 + FIT_EPSILON);
        }
    }
}

/// Three-resource clusters work end-to-end (the paper uses two, but the
/// code is dimension-generic).
#[test]
fn three_dimensional_resources_work() {
    use spear_dag::{DagBuilder, Task};
    let mut b = DagBuilder::new(3);
    let a = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5, 0.2, 0.8])));
    let c = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.5, 0.9, 0.1])));
    let d = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.4, 0.1, 0.3])));
    b.add_edge(a, c).unwrap();
    let dag = b.build().unwrap();
    let spec = ClusterSpec::unit(3);
    let mut sim = SimState::new(&dag, &spec).unwrap();
    // d cannot co-run with a (dim 2: 0.8+0.3 > 1) but fits alongside c.
    sim.apply(&dag, Action::Schedule(a)).unwrap();
    assert!(!sim.can_schedule(&dag, d));
    sim.apply(&dag, Action::Process).unwrap();
    sim.apply(&dag, Action::Schedule(c)).unwrap();
    sim.apply(&dag, Action::Schedule(d)).unwrap(); // fits alongside c
    sim.apply(&dag, Action::Process).unwrap();
    sim.apply(&dag, Action::Process).unwrap();
    let schedule = sim.into_schedule(&dag);
    schedule.validate(&dag, &spec).unwrap();
    assert_eq!(schedule.makespan(), 5);
}

/// Core types are Send + Sync (C-SEND-SYNC): schedulers move across
/// threads in `RootParallelMcts`.
#[test]
fn core_types_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimState>();
    assert_send_sync::<spear_cluster::Schedule>();
    assert_send_sync::<spear_cluster::ClusterSpec>();
    assert_send_sync::<spear_cluster::ClusterError>();
    assert_send_sync::<ResourceTimeline>();
    assert_send_sync::<Action>();
}

/// The Gantt renderer covers every task row and the utilization footer.
#[test]
fn gantt_renders_rows_and_footer() {
    use spear_dag::{DagBuilder, Task};
    let mut b = DagBuilder::new(2);
    let a = b.add_task(Task::new(4, ResourceVec::from_slice(&[1.0, 0.2])).with_name("hog"));
    let c = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5, 0.5])));
    let dag = b.build().unwrap();
    let spec = ClusterSpec::unit(2);
    let mut sim = SimState::new(&dag, &spec).unwrap();
    sim.run_with(&dag, |_, actions| actions[0]).unwrap();
    let schedule = sim.into_schedule(&dag);
    let art = schedule.render_gantt(&dag, &spec, 60);
    assert!(art.contains("hog"));
    assert!(art.contains("t1")); // unnamed task falls back to its id
    assert!(art.contains("util[0]"));
    assert!(art.contains("util[1]"));
    // The CPU hog occupies full capacity while it runs: a '9' (or higher
    // digit column) must appear in the dim-0 footer.
    let footer: Vec<&str> = art.lines().filter(|l| l.contains("util[0]")).collect();
    assert!(
        footer[0].contains('9') || footer[0].contains('8'),
        "{footer:?}"
    );
    let _ = (a, c);
}
