//! Auditing is pure observation: a full seeded episode driven with the
//! invariant auditor on must be bit-identical to the same episode with it
//! off — same decisions, same placements, same makespan.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spear_cluster::env::{EnvContext, EpisodeDriver, FnPolicy, NoRng};
use spear_cluster::{Action, ClusterSpec, Schedule, SimState};
use spear_dag::generator::LayeredDagSpec;
use spear_dag::Dag;

fn random_dag(num_tasks: usize, seed: u64) -> Dag {
    let spec = LayeredDagSpec {
        num_tasks,
        min_width: 1,
        max_width: 4,
        ..LayeredDagSpec::paper_simulation()
    };
    spec.generate(&mut StdRng::seed_from_u64(seed))
}

/// Runs one full episode with a seeded random policy, auditing on or off.
fn run_episode(dag: &Dag, spec: &ClusterSpec, policy_seed: u64, audit: bool) -> Schedule {
    let mut rng = StdRng::seed_from_u64(policy_seed);
    let policy = FnPolicy(move |_: &EnvContext<'_>, _: &SimState, legal: &[Action]| {
        legal[rng.gen_range(0..legal.len())]
    });
    let mut driver = EpisodeDriver::new(policy).with_audit(audit);
    assert_eq!(driver.audits(), audit);
    driver
        .run(dag, spec, &mut NoRng)
        .expect("a random-but-legal episode never fails")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Audit on and audit off produce the exact same schedule for the
    /// exact same seeded policy.
    #[test]
    fn audited_episode_is_bit_identical_to_unaudited(
        num_tasks in 1usize..32,
        dag_seed in any::<u64>(),
        policy_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let audited = run_episode(&dag, &spec, policy_seed, true);
        let unaudited = run_episode(&dag, &spec, policy_seed, false);
        prop_assert_eq!(&audited, &unaudited);
        prop_assert_eq!(audited.makespan(), unaudited.makespan());
    }
}

/// The build-profile default: debug (test) builds audit every driven
/// episode unless explicitly disabled; `with_audit` overrides both ways.
#[test]
fn debug_builds_audit_by_default() {
    let pick_first = |_: &EnvContext<'_>, _: &SimState, legal: &[Action]| legal[0];
    let driver = EpisodeDriver::new(FnPolicy(pick_first));
    assert_eq!(
        driver.audits(),
        cfg!(any(debug_assertions, feature = "audit"))
    );
    assert!(!driver.with_audit(false).audits());
    let driver = EpisodeDriver::new(FnPolicy(pick_first));
    assert!(driver.with_audit(true).audits());
}
