//! The simulation invariant auditor.
//!
//! Every result in this reproduction flows through one [`SimState`]
//! bookkeeping core, so a silent accounting slip (an epsilon of free
//! capacity leaking per admission, a stale entry in the ready frontier, a
//! clock that jumps backwards) skews *every* scheduler comparison at once.
//! [`InvariantAuditor`] cross-checks the state against the DAG after each
//! step and reports the first violated invariant as an [`AuditViolation`]:
//!
//! * **Used coherence** — the state's recorded `used` equals the summed
//!   demand of the running set per dimension (within [`FIT_EPSILON`]).
//!   `used` is the basis of every admission decision, so a slip here
//!   silently changes what "fits".
//! * **Conservation** — `free + Σ(running demands) == capacity` per
//!   dimension, within an episode-scaled epsilon (the derived `free` view
//!   saturates at zero when an epsilon-tolerant admission overlaps past
//!   capacity).
//! * **Free bound** — `free <= capacity` per dimension, *exactly*: `free`
//!   is derived as `max(0, capacity - used)`, so any surplus is a genuine
//!   leak.
//! * **Clock monotonicity** — time never runs backwards within an episode.
//! * **Ready-set consistency** — the tracker's frontier is exactly the set
//!   of unstarted tasks whose parents have all completed.
//! * **Start/finish coherence** — every running task has a recorded start,
//!   `finish == start + runtime`, and completed tasks finished by the
//!   current clock.
//! * **Multi-job coherence** (multi-job states only) — arrival
//!   monotonicity (no task starts before its job arrives; no unarrived
//!   source leaks into the frontier), the injected-job prefix matches the
//!   clock, and the per-job completed counts (the job-tagged half of
//!   conservation) reconcile with the placement table.
//! * **Fault coherence** (fault-injected states only) — attempt counts
//!   are monotone across audited steps and bounded by the retry budget,
//!   every recorded failed run matches the plan's seeded failure point,
//!   the failure count reconciles with the attempt/start tables
//!   (freed-on-failure accounting: a retracted attempt must not leave a
//!   placement or resources behind), the exhaustion marker is coherent,
//!   and the incremental attempt hash matches a from-scratch
//!   recomputation.
//! * **Heterogeneous coherence** (multi-machine states only) — machine
//!   assignments mirror the start table, every machine's `used`/`free`
//!   reconciles with the demand actually running on it (per-machine
//!   conservation), and every started task respects the transfer gate
//!   against edge delays the auditor re-derives from the machine set
//!   itself.
//!
//! The auditor is pure observation: it never mutates the state, so an
//! audited episode is bit-identical to an unaudited one. It is wired into
//! [`EpisodeDriver`](crate::EpisodeDriver) and enabled by default in debug
//! builds (every test exercises it for free) and in release builds with
//! the `audit` cargo feature.

use std::error::Error;
use std::fmt;

use spear_dag::{Dag, TaskId, FIT_EPSILON};

use crate::SimState;

/// The first invariant a [`SimState`] was found to violate.
///
/// Each variant carries the numbers needed to understand the failure
/// without re-running under a debugger.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AuditViolation {
    /// The state's recorded `used` disagrees with the summed demand of the
    /// running set in some dimension — the admission basis is corrupt.
    UsedMismatch {
        /// The offending resource dimension.
        dim: usize,
        /// Used capacity recorded by the state.
        used: f64,
        /// Summed demand of the running set.
        committed: f64,
    },
    /// `free + Σ(running demands)` drifted away from the capacity in some
    /// dimension beyond the episode-scaled tolerance.
    Conservation {
        /// The offending resource dimension.
        dim: usize,
        /// Free capacity recorded by the state.
        free: f64,
        /// Summed demand of the running set.
        committed: f64,
        /// True cluster capacity.
        capacity: f64,
    },
    /// Free capacity exceeds the cluster capacity in some dimension.
    FreeExceedsCapacity {
        /// The offending resource dimension.
        dim: usize,
        /// Free capacity recorded by the state.
        free: f64,
        /// True cluster capacity.
        capacity: f64,
    },
    /// The simulation clock moved backwards between two audited steps.
    ClockRegression {
        /// Clock at the previous audit.
        from: u64,
        /// Clock now — smaller than `from`.
        to: u64,
    },
    /// A task's recorded start, finish and runtime disagree: a running
    /// task without a start, `finish != start + runtime`, a start in the
    /// future, a running task that should already have finished, a
    /// completed task that has not, a duplicate running entry, or a finish
    /// beyond the recorded `max_finish`.
    StartFinishMismatch {
        /// The incoherent task.
        task: TaskId,
    },
    /// The ready frontier lists a task that is not actually ready (it
    /// already started, or a parent has not completed).
    StaleReady {
        /// The task wrongly listed as ready.
        task: TaskId,
    },
    /// A task with all parents completed and no recorded start is missing
    /// from the ready frontier — it could never be scheduled.
    MissingReady {
        /// The task wrongly absent from the frontier.
        task: TaskId,
    },
    /// A derived count (completed or scheduled tasks) disagrees with the
    /// state's recorded counter.
    CountMismatch {
        /// Which counter disagreed (`"completed"` or `"scheduled"`).
        field: &'static str,
        /// The state's recorded value.
        recorded: usize,
        /// The value derived from starts/running.
        derived: usize,
    },
    /// A task started before its job's arrival time — the multi-job
    /// arrival gate leaked (arrival monotonicity).
    EarlyStart {
        /// The prematurely started task.
        task: TaskId,
        /// Its recorded start time.
        start: u64,
        /// Its job's arrival time (later than the start).
        arrival: u64,
    },
    /// The ready frontier lists a task whose job has not arrived yet —
    /// a scheduler could start it before its arrival.
    UnarrivedReady {
        /// The prematurely listed task.
        task: TaskId,
    },
    /// A job's recorded completed-task count disagrees with the one
    /// derived from the placement table — per-job (job-tagged)
    /// conservation is broken, so JCT accounting would silently lie.
    JobCountMismatch {
        /// The job with corrupt accounting (queue order).
        job: usize,
        /// The state's recorded completed-task count.
        recorded: usize,
        /// The count derived from starts/running.
        derived: usize,
    },
    /// The incrementally maintained state fingerprint disagrees with a
    /// from-scratch recomputation — the inference cache would be keyed by
    /// a hash of some *other* state, turning every lookup into a
    /// potential silent wrong-cache-hit.
    FingerprintDesync {
        /// The fingerprint derived from the incremental placement hash.
        stored: u64,
        /// The fingerprint recomputed from the placement list.
        recomputed: u64,
    },
    /// A task accumulated more execution attempts than its retry budget
    /// allows — the fail-fast exhaustion path was bypassed.
    RetryOverrun {
        /// The over-retried task.
        task: TaskId,
        /// Attempts recorded for it.
        attempts: u32,
        /// The plan's attempt ceiling (`max_retries + 1`).
        max_attempts: u32,
    },
    /// A task's attempt counter decreased between two audited steps —
    /// attempt counts are append-only history and must be monotone.
    AttemptRegression {
        /// The task whose counter went backwards.
        task: TaskId,
        /// Attempts at the previous audit.
        from: u32,
        /// Attempts now — smaller than `from`.
        to: u32,
    },
    /// A fault-bookkeeping quantity disagrees with the value derived
    /// from the plan and the placement/attempt tables (which field is
    /// named in `field`).
    FaultAccounting {
        /// The inconsistent quantity.
        field: &'static str,
        /// The state's recorded value.
        recorded: u64,
        /// The value derived from the plan and the tables.
        derived: u64,
    },
    /// A machine's recorded `used` disagrees with the summed demand of
    /// the running tasks placed on it — the per-machine admission basis
    /// is corrupt (heterogeneous states only).
    MachineUsedMismatch {
        /// The machine with corrupt accounting.
        machine: u32,
        /// The offending resource dimension.
        dim: usize,
        /// Used capacity recorded for the machine.
        used: f64,
        /// Summed demand of the tasks running on it.
        committed: f64,
    },
    /// A machine's `free + Σ(demands running on it)` drifted away from
    /// its capacity, or its derived `free` exceeds its capacity —
    /// per-machine conservation is broken (heterogeneous states only).
    MachineConservation {
        /// The machine with corrupt accounting.
        machine: u32,
        /// The offending resource dimension.
        dim: usize,
        /// Free capacity recorded for the machine.
        free: f64,
        /// Summed demand of the tasks running on it.
        committed: f64,
        /// The machine's true capacity.
        capacity: f64,
    },
    /// A task's machine assignment is incoherent: assigned without a
    /// recorded start, started without an assignment, or out of range
    /// (heterogeneous states only).
    MachineAssignment {
        /// The incoherently assigned task.
        task: TaskId,
    },
    /// A task started inside the transfer window of a cross-machine
    /// parent — the start precedes the parent's finish plus the
    /// re-derived edge transfer delay (heterogeneous states only).
    TransferGatedStart {
        /// The parent whose output had not arrived yet.
        parent: TaskId,
        /// The prematurely started child.
        child: TaskId,
        /// The child's recorded start.
        start: u64,
        /// The earliest legal start re-derived from the network model.
        ready: u64,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::UsedMismatch {
                dim,
                used,
                committed,
            } => write!(
                f,
                "recorded used capacity {used} disagrees with the running \
                 set's summed demand {committed} in dimension {dim}"
            ),
            AuditViolation::Conservation {
                dim,
                free,
                committed,
                capacity,
            } => write!(
                f,
                "resource conservation broken in dimension {dim}: \
                 free {free} + committed {committed} != capacity {capacity}"
            ),
            AuditViolation::FreeExceedsCapacity {
                dim,
                free,
                capacity,
            } => write!(
                f,
                "free capacity {free} exceeds cluster capacity {capacity} \
                 in dimension {dim}"
            ),
            AuditViolation::ClockRegression { from, to } => {
                write!(f, "simulation clock ran backwards from {from} to {to}")
            }
            AuditViolation::StartFinishMismatch { task } => write!(
                f,
                "start/finish bookkeeping of task {task} disagrees with its runtime"
            ),
            AuditViolation::StaleReady { task } => {
                write!(f, "ready frontier lists task {task}, which is not ready")
            }
            AuditViolation::MissingReady { task } => {
                write!(f, "task {task} is ready but missing from the frontier")
            }
            AuditViolation::CountMismatch {
                field,
                recorded,
                derived,
            } => write!(
                f,
                "{field} count is recorded as {recorded} but derives to {derived}"
            ),
            AuditViolation::EarlyStart {
                task,
                start,
                arrival,
            } => write!(
                f,
                "task {task} started at {start}, before its job's arrival at {arrival}"
            ),
            AuditViolation::UnarrivedReady { task } => write!(
                f,
                "ready frontier lists task {task}, whose job has not arrived"
            ),
            AuditViolation::JobCountMismatch {
                job,
                recorded,
                derived,
            } => write!(
                f,
                "job {job} records {recorded} completed tasks but {derived} derive \
                 from the placements"
            ),
            AuditViolation::FingerprintDesync { stored, recomputed } => write!(
                f,
                "state fingerprint {stored:#018x} disagrees with the \
                 from-scratch recomputation {recomputed:#018x}"
            ),
            AuditViolation::RetryOverrun {
                task,
                attempts,
                max_attempts,
            } => write!(
                f,
                "task {task} recorded {attempts} execution attempts, past \
                 the retry budget's ceiling of {max_attempts}"
            ),
            AuditViolation::AttemptRegression { task, from, to } => write!(
                f,
                "attempt counter of task {task} ran backwards from {from} to {to}"
            ),
            AuditViolation::FaultAccounting {
                field,
                recorded,
                derived,
            } => write!(
                f,
                "fault bookkeeping field {field} is recorded as {recorded} \
                 but derives to {derived}"
            ),
            AuditViolation::MachineUsedMismatch {
                machine,
                dim,
                used,
                committed,
            } => write!(
                f,
                "machine {machine} records used capacity {used} but its running \
                 set's summed demand is {committed} in dimension {dim}"
            ),
            AuditViolation::MachineConservation {
                machine,
                dim,
                free,
                committed,
                capacity,
            } => write!(
                f,
                "machine {machine} breaks conservation in dimension {dim}: \
                 free {free} + committed {committed} != capacity {capacity}"
            ),
            AuditViolation::MachineAssignment { task } => write!(
                f,
                "machine assignment of task {task} disagrees with its start record"
            ),
            AuditViolation::TransferGatedStart {
                parent,
                child,
                start,
                ready,
            } => write!(
                f,
                "task {child} started at {start}, inside the transfer window of \
                 its parent {parent} (data arrives at {ready})"
            ),
        }
    }
}

impl Error for AuditViolation {}

/// Cross-checks a [`SimState`] against its DAG after every step.
///
/// The auditor owns scratch buffers sized to the DAG, so a check is a
/// single `O(tasks + edges + running)` pass with no allocation in steady
/// state. It is cheap enough to leave on for every debug/test episode.
///
/// ```
/// use spear_dag::{DagBuilder, ResourceVec, Task};
/// use spear_cluster::{Action, ClusterSpec, InvariantAuditor, SimState};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DagBuilder::new(1);
/// let t = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
/// let dag = b.build()?;
/// let spec = ClusterSpec::unit(1);
/// let mut sim = SimState::new(&dag, &spec)?;
/// let mut audit = InvariantAuditor::new();
/// audit.check(&dag, &sim)?;
/// sim.apply(&dag, Action::Schedule(t))?;
/// audit.check(&dag, &sim)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct InvariantAuditor {
    /// Clock at the last audited step, for monotonicity.
    last_clock: Option<u64>,
    /// Per-task attempt counts at the last audited step, for attempt
    /// monotonicity (fault-injected states only; empty otherwise).
    last_attempts: Vec<u32>,
    /// Scratch: per-dimension summed demand of the running set.
    committed: Vec<f64>,
    /// Scratch: per-task "currently running" flag.
    running: Vec<bool>,
    /// Scratch: per-task "listed in the ready frontier" flag.
    listed_ready: Vec<bool>,
}

impl InvariantAuditor {
    /// Creates an auditor with no clock history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets the clock and attempt history — call when switching to a
    /// new episode so its initial `clock == 0` is not reported as a
    /// regression.
    pub fn reset(&mut self) {
        self.last_clock = None;
        self.last_attempts.clear();
    }

    /// Checks every invariant of `state` against `dag`, returning the
    /// first violation found. A passing check records the clock for the
    /// next monotonicity comparison.
    pub fn check(&mut self, dag: &Dag, state: &SimState) -> Result<(), AuditViolation> {
        // 1. Clock monotonicity across audited steps.
        if let Some(last) = self.last_clock {
            if state.clock < last {
                return Err(AuditViolation::ClockRegression {
                    from: last,
                    to: state.clock,
                });
            }
        }
        self.last_clock = Some(state.clock);

        // 2. Free never exceeds capacity. Exact, not epsilon-tolerant:
        // `free` is derived as `max(0, capacity - used)`, so any surplus
        // here is the drift bug resurfacing.
        let dims = state.capacity.dims();
        for d in 0..dims {
            if state.free[d] > state.capacity[d] {
                return Err(AuditViolation::FreeExceedsCapacity {
                    dim: d,
                    free: state.free[d],
                    capacity: state.capacity[d],
                });
            }
        }

        // 3. Start/finish coherence of the running set.
        self.running.clear();
        self.running.resize(dag.len(), false);
        for r in &state.running {
            let i = r.task.index();
            // `run_slots_of` is the effective-duration ground truth: the
            // plain runtime in fault-free states, the current attempt's
            // fail-point/straggle occupancy under a fault plan.
            let coherent = !self.running[i]
                && state.starts[i].is_some_and(|start| {
                    start <= state.clock
                        && start.checked_add(state.run_slots_of(dag, r.task)) == Some(r.finish)
                })
                && r.finish >= state.clock
                && r.finish <= state.max_finish;
            if !coherent {
                return Err(AuditViolation::StartFinishMismatch { task: r.task });
            }
            self.running[i] = true;
        }

        // 4. Used coherence and conservation. `committed` re-derives the
        // summed demand of the running set from the DAG; the recorded
        // `used` must match it within one FIT_EPSILON (floating-point
        // accumulation only — the sums differ in operation order), and
        // `free + committed` must reconstruct the capacity within an
        // episode-scaled tolerance (the derived `free` saturates at zero
        // when an epsilon-tolerant admission overlaps past capacity, so
        // one epsilon per task plus one for the comparison itself).
        self.committed.clear();
        self.committed.resize(dims, 0.0);
        for r in &state.running {
            let demand = dag.task(r.task).demand();
            for d in 0..dims {
                self.committed[d] += demand[d];
            }
        }
        let tolerance = FIT_EPSILON * (dag.len() as f64 + 1.0);
        for d in 0..dims {
            let total = state.free[d] + self.committed[d];
            if (total - state.capacity[d]).abs() > tolerance {
                return Err(AuditViolation::Conservation {
                    dim: d,
                    free: state.free[d],
                    committed: self.committed[d],
                    capacity: state.capacity[d],
                });
            }
        }
        for d in 0..dims {
            if (state.used[d] - self.committed[d]).abs() > FIT_EPSILON {
                return Err(AuditViolation::UsedMismatch {
                    dim: d,
                    used: state.used[d],
                    committed: self.committed[d],
                });
            }
        }

        // 5. Completed tasks finished by now, and the derived counts match
        // the recorded ones. A task is done iff it started and is no
        // longer running.
        let mut started = 0usize;
        let mut done_count = 0usize;
        for i in 0..dag.len() {
            let Some(start) = state.starts[i] else {
                continue;
            };
            started += 1;
            if self.running[i] {
                continue;
            }
            done_count += 1;
            let task = TaskId::new(i);
            let finished_by_now = start
                .checked_add(state.run_slots_of(dag, task))
                .is_some_and(|finish| finish <= state.clock);
            if !finished_by_now {
                return Err(AuditViolation::StartFinishMismatch { task });
            }
        }
        if started != state.scheduled {
            return Err(AuditViolation::CountMismatch {
                field: "scheduled",
                recorded: state.scheduled,
                derived: started,
            });
        }
        if done_count != state.tracker.completed() {
            return Err(AuditViolation::CountMismatch {
                field: "completed",
                recorded: state.tracker.completed(),
                derived: done_count,
            });
        }

        // 6. Ready-set consistency: the frontier is exactly the unstarted
        // tasks whose parents have all completed.
        self.listed_ready.clear();
        self.listed_ready.resize(dag.len(), false);
        let is_done = |i: usize| -> bool { state.starts[i].is_some() && !self.running[i] };
        for &t in state.tracker.ready() {
            let i = t.index();
            let actually_ready =
                state.starts[i].is_none() && dag.parents(t).iter().all(|p| is_done(p.index()));
            if !actually_ready || self.listed_ready[i] {
                return Err(AuditViolation::StaleReady { task: t });
            }
            self.listed_ready[i] = true;
        }
        for t in dag.task_ids() {
            let i = t.index();
            if self.listed_ready[i] || state.starts[i].is_some() {
                continue;
            }
            // Multi-job: sources of jobs that have not arrived are
            // deliberately withheld from the frontier — but only until the
            // clock crosses their arrival; a lagging injection falls
            // through and is reported as MissingReady.
            if state
                .multi
                .as_deref()
                .is_some_and(|m| m.arrivals[m.job_of(i)] > state.clock)
            {
                continue;
            }
            // A retry-exhausted task is deliberately *not* re-queued: it
            // poisoned the episode and must stay out of the frontier.
            if state.exhausted() == Some(t) {
                continue;
            }
            if dag.parents(t).iter().all(|p| is_done(p.index())) {
                return Err(AuditViolation::MissingReady { task: t });
            }
        }

        // 6b. Multi-job coherence: arrival monotonicity and job-tagged
        // conservation. The injected prefix must match what the clock
        // implies, no start may precede its job's arrival, no unarrived
        // source may sit in the frontier, and the per-job completed
        // counts (the basis of JCT accounting and the in-flight gauges)
        // must reconcile with the placement table.
        if let Some(multi) = state.multi.as_deref() {
            let derived_injected = multi.arrivals.partition_point(|&a| a <= state.clock);
            if multi.next_arrival != derived_injected {
                return Err(AuditViolation::CountMismatch {
                    field: "injected_jobs",
                    recorded: multi.next_arrival,
                    derived: derived_injected,
                });
            }
            for (i, start) in state.starts.iter().enumerate() {
                if let Some(start) = *start {
                    let arrival = multi.arrivals[multi.job_of(i)];
                    if start < arrival {
                        return Err(AuditViolation::EarlyStart {
                            task: TaskId::new(i),
                            start,
                            arrival,
                        });
                    }
                }
            }
            for &t in state.tracker.ready() {
                if multi.arrivals[multi.job_of(t.index())] > state.clock {
                    return Err(AuditViolation::UnarrivedReady { task: t });
                }
            }
            let mut jobs_done = 0usize;
            for job in 0..multi.jobs() {
                let range = multi.job_range(job);
                let tasks = range.len();
                let derived = range.filter(|&i| is_done(i)).count();
                if derived != multi.completed[job] as usize {
                    return Err(AuditViolation::JobCountMismatch {
                        job,
                        recorded: multi.completed[job] as usize,
                        derived,
                    });
                }
                if derived == tasks {
                    jobs_done += 1;
                }
            }
            if jobs_done != multi.jobs_done {
                return Err(AuditViolation::CountMismatch {
                    field: "jobs_done",
                    recorded: multi.jobs_done,
                    derived: jobs_done,
                });
            }
        }

        // 6c. Fault coherence: attempt counts are monotone and bounded,
        // failed runs match the plan's seeded failure points, the
        // failure tally reconciles with the attempt/start tables (a
        // retracted attempt must have left no placement behind — its
        // resources are already covered by checks 2/4, which derive
        // everything from the *current* running set), and the exhaustion
        // marker is coherent. Fault-free states skip the whole group.
        if let Some(f) = state.faults.as_deref() {
            let max_attempts = f.plan.max_attempts();
            let mut derived_failures = 0u64;
            for (i, &attempts) in f.attempts.iter().enumerate() {
                let task = TaskId::new(i);
                if attempts > max_attempts {
                    return Err(AuditViolation::RetryOverrun {
                        task,
                        attempts,
                        max_attempts,
                    });
                }
                if let Some(&last) = self.last_attempts.get(i) {
                    if attempts < last {
                        return Err(AuditViolation::AttemptRegression {
                            task,
                            from: last,
                            to: attempts,
                        });
                    }
                }
                let live = u32::from(state.starts[i].is_some());
                if attempts < live {
                    return Err(AuditViolation::FaultAccounting {
                        field: "started_attempts",
                        recorded: u64::from(attempts),
                        derived: u64::from(live),
                    });
                }
                derived_failures += u64::from(attempts - live);
            }
            if f.failed_runs.len() as u64 != derived_failures {
                return Err(AuditViolation::FaultAccounting {
                    field: "failed_runs",
                    recorded: f.failed_runs.len() as u64,
                    derived: derived_failures,
                });
            }
            for run in &f.failed_runs {
                let i = run.task.index();
                let expected =
                    match f
                        .plan
                        .outcome(run.task, run.attempt, dag.task(run.task).runtime())
                    {
                        crate::faults::FaultOutcome::Fail { after } => Some(after),
                        _ => None,
                    };
                let coherent = run.attempt < f.attempts[i]
                    && run.end <= state.clock
                    && run.end.checked_sub(run.start) == expected;
                if !coherent {
                    return Err(AuditViolation::FaultAccounting {
                        field: "failed_run",
                        recorded: run.end.saturating_sub(run.start),
                        derived: expected.unwrap_or(0),
                    });
                }
            }
            if let Some(t) = f.exhausted {
                let i = t.index();
                if f.attempts[i] != max_attempts {
                    return Err(AuditViolation::FaultAccounting {
                        field: "exhausted_attempts",
                        recorded: u64::from(f.attempts[i]),
                        derived: u64::from(max_attempts),
                    });
                }
                if state.starts[i].is_some() || self.listed_ready[i] {
                    return Err(AuditViolation::StaleReady { task: t });
                }
            }
            let recomputed = f.recompute_attempt_hash();
            if f.attempt_hash != recomputed {
                return Err(AuditViolation::FaultAccounting {
                    field: "attempt_hash",
                    recorded: f.attempt_hash,
                    derived: recomputed,
                });
            }
            self.last_attempts.clear();
            self.last_attempts.extend_from_slice(&f.attempts);
        } else {
            self.last_attempts.clear();
        }

        // 6d. Heterogeneous-cluster coherence: machine assignments mirror
        // the start table, every machine's `used`/`free` reconciles with
        // the demand actually running on it, and every started task
        // respects the transfer gate — its start at or after each
        // parent's finish plus the edge delay *re-derived here* from the
        // machine set's seeded bytes and link bandwidths. Single-box
        // states skip the whole group.
        if let Some(h) = state.hetero.as_deref() {
            let n = h.machines.len();
            for i in 0..dag.len() {
                let assigned = h.machine_of[i];
                let incoherent = assigned.is_some() != state.starts[i].is_some()
                    || assigned.is_some_and(|m| (m as usize) >= n);
                if incoherent {
                    return Err(AuditViolation::MachineAssignment {
                        task: TaskId::new(i),
                    });
                }
            }
            for m in 0..n {
                let machine = m as u32;
                let cap = h.machines.capacity(machine);
                self.committed.clear();
                self.committed.resize(dims, 0.0);
                for r in &state.running {
                    if h.machine_of[r.task.index()] == Some(machine) {
                        let demand = dag.task(r.task).demand();
                        for d in 0..dims {
                            self.committed[d] += demand[d];
                        }
                    }
                }
                for d in 0..dims {
                    if (h.used[m][d] - self.committed[d]).abs() > FIT_EPSILON {
                        return Err(AuditViolation::MachineUsedMismatch {
                            machine,
                            dim: d,
                            used: h.used[m][d],
                            committed: self.committed[d],
                        });
                    }
                    let drifted = h.free[m][d] > cap[d]
                        || (h.free[m][d] + self.committed[d] - cap[d]).abs() > tolerance;
                    if drifted {
                        return Err(AuditViolation::MachineConservation {
                            machine,
                            dim: d,
                            free: h.free[m][d],
                            committed: self.committed[d],
                            capacity: cap[d],
                        });
                    }
                }
            }
            for e in dag.edges() {
                let (Some(ps), Some(cs)) =
                    (state.starts[e.from.index()], state.starts[e.to.index()])
                else {
                    continue;
                };
                let (Some(pm), Some(cm)) =
                    (h.machine_of[e.from.index()], h.machine_of[e.to.index()])
                else {
                    continue; // assignment coherence already checked above
                };
                let finish = ps.saturating_add(state.run_slots_of(dag, e.from));
                let ready = finish.saturating_add(h.machines.edge_delay(
                    e.from.index(),
                    e.to.index(),
                    pm,
                    cm,
                ));
                if cs < ready {
                    return Err(AuditViolation::TransferGatedStart {
                        parent: e.from,
                        child: e.to,
                        start: cs,
                        ready,
                    });
                }
            }
        }

        // 7. Fingerprint coherence: the incremental placement hash behind
        // `SimState::fingerprint` must equal a from-scratch recomputation
        // from the placement list (the other fingerprint ingredients are
        // folded at read time and cannot drift). Checked last on purpose:
        // a corruption that breaks a semantic invariant (say, an injected
        // running entry) usually desyncs the fingerprint too, and should
        // be reported as the semantic violation, not as hash drift.
        let placement = state.recompute_placement_hash();
        if placement != state.placement_hash {
            return Err(AuditViolation::FingerprintDesync {
                stored: state.fingerprint(),
                recomputed: state.fold_fingerprint(placement),
            });
        }

        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Action, ClusterSpec, Running};
    use spear_dag::topo::ReadyTracker;
    use spear_dag::{DagBuilder, ResourceVec, Task};

    fn diamond() -> Dag {
        // 0 -> {1, 2} -> 3
        let mut b = DagBuilder::new(1);
        let a = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
        let l = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.4])));
        let r = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.4])));
        let d = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
        b.add_edge(a, l).unwrap();
        b.add_edge(a, r).unwrap();
        b.add_edge(l, d).unwrap();
        b.add_edge(r, d).unwrap();
        b.build().unwrap()
    }

    /// Steps a first-legal-action episode to termination, auditing after
    /// every step.
    #[test]
    fn clean_episode_passes_every_check() {
        let dag = diamond();
        let spec = ClusterSpec::unit(1);
        let mut sim = SimState::new(&dag, &spec).unwrap();
        let mut audit = InvariantAuditor::new();
        audit.check(&dag, &sim).unwrap();
        while !sim.is_terminal(&dag) {
            let actions = sim.legal_actions(&dag);
            sim.apply(&dag, actions[0]).unwrap();
            audit.check(&dag, &sim).unwrap();
        }
    }

    #[test]
    fn injected_overcommit_breaks_conservation() {
        let dag = diamond();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        // Push a running entry without subtracting its demand from free.
        sim.running.push(Running {
            task: TaskId::new(0),
            finish: 2,
        });
        sim.starts[0] = Some(0);
        sim.scheduled = 1;
        sim.max_finish = 2;
        sim.tracker.take(TaskId::new(0));
        let err = InvariantAuditor::new().check(&dag, &sim).unwrap_err();
        assert!(matches!(err, AuditViolation::Conservation { dim: 0, .. }));
    }

    #[test]
    fn inflated_free_capacity_is_caught() {
        let dag = diamond();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        sim.free = ResourceVec::from_slice(&[1.25]);
        let err = InvariantAuditor::new().check(&dag, &sim).unwrap_err();
        assert!(matches!(
            err,
            AuditViolation::FreeExceedsCapacity { dim: 0, .. }
        ));
    }

    #[test]
    fn corrupted_used_accounting_is_caught() {
        let dag = diamond();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        // Shrink `used` while leaving `free` consistent with the running
        // set — conservation still holds, so only the direct used-vs-
        // running cross-check can see this.
        sim.used = ResourceVec::from_slice(&[0.2]);
        let err = InvariantAuditor::new().check(&dag, &sim).unwrap_err();
        assert!(matches!(err, AuditViolation::UsedMismatch { dim: 0, .. }));
    }

    #[test]
    fn clock_regression_is_caught() {
        let dag = diamond();
        let spec = ClusterSpec::unit(1);
        let mut sim = SimState::new(&dag, &spec).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        sim.apply(&dag, Action::Process).unwrap();
        let mut audit = InvariantAuditor::new();
        audit.check(&dag, &sim).unwrap();
        sim.clock = 0; // rewind behind the auditor's back
        let err = audit.check(&dag, &sim).unwrap_err();
        assert_eq!(err, AuditViolation::ClockRegression { from: 2, to: 0 });
    }

    #[test]
    fn stale_ready_entry_is_caught() {
        let dag = diamond();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        // Replacing the tracker resets the frontier to the sources, so it
        // re-lists the already-started task 0.
        sim.tracker = ReadyTracker::new(&dag);
        let err = InvariantAuditor::new().check(&dag, &sim).unwrap_err();
        assert_eq!(
            err,
            AuditViolation::StaleReady {
                task: TaskId::new(0)
            }
        );
    }

    #[test]
    fn running_finish_must_match_start_plus_runtime() {
        let dag = diamond();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        sim.running[0].finish = 7; // runtime is 2, start is 0
        let err = InvariantAuditor::new().check(&dag, &sim).unwrap_err();
        assert_eq!(
            err,
            AuditViolation::StartFinishMismatch {
                task: TaskId::new(0)
            }
        );
    }

    #[test]
    fn desynced_fingerprint_is_caught() {
        let dag = diamond();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        // Flip bits in the incremental placement hash without touching the
        // state it summarizes — the from-scratch recomputation disagrees.
        sim.placement_hash ^= 0xdead_beef;
        let err = InvariantAuditor::new().check(&dag, &sim).unwrap_err();
        assert!(matches!(err, AuditViolation::FingerprintDesync { .. }));
    }

    #[test]
    fn scheduled_counter_mismatch_is_caught() {
        let dag = diamond();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        sim.scheduled = 3;
        let err = InvariantAuditor::new().check(&dag, &sim).unwrap_err();
        assert_eq!(
            err,
            AuditViolation::CountMismatch {
                field: "scheduled",
                recorded: 3,
                derived: 1
            }
        );
    }

    mod multi_job {
        use super::*;
        use crate::{JobQueue, SimState};

        /// Two single-task jobs: one at t=0, one arriving at t=5.
        fn queue() -> JobQueue {
            let job = |runtime: u64| {
                let mut b = DagBuilder::new(1);
                b.add_task(Task::new(runtime, ResourceVec::from_slice(&[0.6])));
                b.build().unwrap()
            };
            JobQueue::new(vec![(0, job(2)), (5, job(2))]).unwrap()
        }

        #[test]
        fn clean_multi_job_episode_passes_every_check() {
            let queue = queue();
            let dag = queue.union_dag();
            let mut sim = SimState::new_multi(&queue, &ClusterSpec::unit(1)).unwrap();
            let mut audit = InvariantAuditor::new();
            audit.check(dag, &sim).unwrap();
            while !sim.is_terminal(dag) {
                let actions = sim.legal_actions(dag);
                sim.apply(dag, actions[0]).unwrap();
                audit.check(dag, &sim).unwrap();
            }
        }

        #[test]
        fn cross_job_resource_leak_breaks_conservation() {
            // Admit the second job's task without charging `used`: the
            // resources it holds leaked across the job boundary.
            let job = |runtime: u64| {
                let mut b = DagBuilder::new(1);
                b.add_task(Task::new(runtime, ResourceVec::from_slice(&[0.6])));
                b.build().unwrap()
            };
            let queue = JobQueue::new(vec![(0, job(2)), (0, job(2))]).unwrap();
            let dag = queue.union_dag();
            let mut sim = SimState::new_multi(&queue, &ClusterSpec::unit(1)).unwrap();
            sim.apply(dag, Action::Schedule(TaskId::new(0))).unwrap();
            let leaked = TaskId::new(1);
            sim.tracker.take(leaked);
            sim.running.push(Running {
                task: leaked,
                finish: 2,
            });
            sim.starts[1] = Some(0);
            sim.scheduled += 1;
            let err = InvariantAuditor::new().check(dag, &sim).unwrap_err();
            assert!(matches!(err, AuditViolation::Conservation { dim: 0, .. }));
        }

        #[test]
        fn early_start_is_caught() {
            let queue = queue();
            let dag = queue.union_dag();
            let mut sim = SimState::new_multi(&queue, &ClusterSpec::unit(1)).unwrap();
            sim.run_with(dag, |_, actions| actions[0]).unwrap();
            let mut audit = InvariantAuditor::new();
            audit.check(dag, &sim).unwrap();
            // Rewrite the second job's start to before its arrival at 5.
            sim.starts[1] = Some(3);
            let err = audit.check(dag, &sim).unwrap_err();
            assert_eq!(
                err,
                AuditViolation::EarlyStart {
                    task: TaskId::new(1),
                    start: 3,
                    arrival: 5
                }
            );
        }

        #[test]
        fn unarrived_ready_entry_is_caught() {
            let queue = queue();
            let dag = queue.union_dag();
            let mut sim = SimState::new_multi(&queue, &ClusterSpec::unit(1)).unwrap();
            // Leak the gated source into the frontier at t=0.
            sim.tracker.insert_ready(TaskId::new(1));
            let err = InvariantAuditor::new().check(dag, &sim).unwrap_err();
            assert_eq!(
                err,
                AuditViolation::UnarrivedReady {
                    task: TaskId::new(1)
                }
            );
        }

        #[test]
        fn injected_prefix_desync_is_caught() {
            let queue = queue();
            let dag = queue.union_dag();
            let mut sim = SimState::new_multi(&queue, &ClusterSpec::unit(1)).unwrap();
            // Claim the t=5 job was injected while the clock is still 0
            // (without touching the frontier, so only the prefix check
            // can see it).
            sim.multi.as_deref_mut().unwrap().next_arrival = 2;
            let err = InvariantAuditor::new().check(dag, &sim).unwrap_err();
            assert_eq!(
                err,
                AuditViolation::CountMismatch {
                    field: "injected_jobs",
                    recorded: 2,
                    derived: 1
                }
            );
        }

        #[test]
        fn per_job_completed_count_corruption_is_caught() {
            let queue = queue();
            let dag = queue.union_dag();
            let mut sim = SimState::new_multi(&queue, &ClusterSpec::unit(1)).unwrap();
            sim.apply(dag, Action::Schedule(TaskId::new(0))).unwrap();
            sim.apply(dag, Action::Process).unwrap(); // job 0 done at t=2
            sim.multi.as_deref_mut().unwrap().completed[0] = 0;
            let err = InvariantAuditor::new().check(dag, &sim).unwrap_err();
            assert_eq!(
                err,
                AuditViolation::JobCountMismatch {
                    job: 0,
                    recorded: 0,
                    derived: 1
                }
            );
        }

        #[test]
        fn jobs_done_counter_corruption_is_caught() {
            let queue = queue();
            let dag = queue.union_dag();
            let mut sim = SimState::new_multi(&queue, &ClusterSpec::unit(1)).unwrap();
            sim.run_with(dag, |_, actions| actions[0]).unwrap();
            sim.multi.as_deref_mut().unwrap().jobs_done = 1;
            let err = InvariantAuditor::new().check(dag, &sim).unwrap_err();
            assert_eq!(
                err,
                AuditViolation::CountMismatch {
                    field: "jobs_done",
                    recorded: 1,
                    derived: 2
                }
            );
        }
    }

    mod faults {
        use super::*;
        use crate::faults::FaultPlan;
        use crate::SimState;

        fn plan(fail_rate: f64, max_retries: u32) -> FaultPlan {
            FaultPlan {
                seed: 3,
                fail_rate,
                straggler_rate: 0.4,
                straggler_factor: 1.8,
                max_retries,
            }
        }

        /// A fault-riddled episode — failures, stragglers, retries,
        /// eventually completion — passes every check at every step.
        #[test]
        fn clean_faulty_episode_passes_every_check() {
            let dag = diamond();
            let spec = ClusterSpec::unit(1);
            let mut sim = SimState::new(&dag, &spec)
                .unwrap()
                .with_faults(plan(0.45, 8));
            let mut audit = InvariantAuditor::new();
            audit.check(&dag, &sim).unwrap();
            while !sim.is_terminal(&dag) {
                let actions = sim.legal_actions(&dag);
                sim.apply(&dag, actions[0]).unwrap();
                audit.check(&dag, &sim).unwrap();
            }
            assert!(
                sim.exhausted().is_none(),
                "retry budget of 8 should suffice"
            );
            assert!(sim.fault_failures() > 0 || sim.fault_straggles() > 0);
        }

        /// A retry-exhausted (poisoned) terminal state is still coherent:
        /// the exhausted task sits outside the frontier by design.
        #[test]
        fn exhausted_terminal_state_passes_the_audit() {
            let dag = diamond();
            let spec = ClusterSpec::unit(1);
            let mut sim = SimState::new(&dag, &spec)
                .unwrap()
                .with_faults(plan(1.0, 1));
            let mut audit = InvariantAuditor::new();
            while !sim.is_terminal(&dag) {
                let actions = sim.legal_actions(&dag);
                sim.apply(&dag, actions[0]).unwrap();
                audit.check(&dag, &sim).unwrap();
            }
            assert!(sim.exhausted().is_some());
        }

        #[test]
        fn attempt_count_past_the_budget_is_caught() {
            let dag = diamond();
            let mut sim = SimState::new(&dag, &ClusterSpec::unit(1))
                .unwrap()
                .with_faults(plan(0.2, 2));
            sim.faults.as_deref_mut().unwrap().attempts[0] = 9;
            let err = InvariantAuditor::new().check(&dag, &sim).unwrap_err();
            assert_eq!(
                err,
                AuditViolation::RetryOverrun {
                    task: TaskId::new(0),
                    attempts: 9,
                    max_attempts: 3
                }
            );
        }

        #[test]
        fn attempt_regression_is_caught() {
            let dag = diamond();
            let spec = ClusterSpec::unit(1);
            let mut sim = SimState::new(&dag, &spec)
                .unwrap()
                .with_faults(plan(1.0, 5));
            let mut audit = InvariantAuditor::new();
            sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
            sim.apply(&dag, Action::Process).unwrap(); // attempt 1 fails
            audit.check(&dag, &sim).unwrap();
            let f = sim.faults.as_deref_mut().unwrap();
            f.attempts[0] = 0;
            f.attempt_hash = f.recompute_attempt_hash();
            f.failed_runs.clear();
            let err = audit.check(&dag, &sim).unwrap_err();
            assert_eq!(
                err,
                AuditViolation::AttemptRegression {
                    task: TaskId::new(0),
                    from: 1,
                    to: 0
                }
            );
        }

        #[test]
        fn dropped_failed_run_breaks_fault_accounting() {
            let dag = diamond();
            let mut sim = SimState::new(&dag, &ClusterSpec::unit(1))
                .unwrap()
                .with_faults(plan(1.0, 5));
            sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
            sim.apply(&dag, Action::Process).unwrap(); // attempt fails
            sim.faults.as_deref_mut().unwrap().failed_runs.clear();
            let err = InvariantAuditor::new().check(&dag, &sim).unwrap_err();
            assert_eq!(
                err,
                AuditViolation::FaultAccounting {
                    field: "failed_runs",
                    recorded: 0,
                    derived: 1
                }
            );
        }

        #[test]
        fn tampered_failure_interval_is_caught() {
            let dag = diamond();
            let mut sim = SimState::new(&dag, &ClusterSpec::unit(1))
                .unwrap()
                .with_faults(plan(1.0, 5));
            sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
            sim.apply(&dag, Action::Process).unwrap();
            // Stretch the recorded failed interval past the plan's seeded
            // failure point.
            sim.faults.as_deref_mut().unwrap().failed_runs[0].start = 0;
            sim.faults.as_deref_mut().unwrap().failed_runs[0].end = 40;
            sim.clock = 40;
            let err = InvariantAuditor::new().check(&dag, &sim).unwrap_err();
            assert!(matches!(
                err,
                AuditViolation::FaultAccounting {
                    field: "failed_run",
                    ..
                }
            ));
        }

        #[test]
        fn desynced_attempt_hash_is_caught() {
            let dag = diamond();
            let mut sim = SimState::new(&dag, &ClusterSpec::unit(1))
                .unwrap()
                .with_faults(plan(0.3, 2));
            sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
            sim.faults.as_deref_mut().unwrap().attempt_hash ^= 1;
            let err = InvariantAuditor::new().check(&dag, &sim).unwrap_err();
            assert!(matches!(
                err,
                AuditViolation::FaultAccounting {
                    field: "attempt_hash",
                    ..
                }
            ));
        }

        #[test]
        fn fake_exhaustion_marker_is_caught() {
            let dag = diamond();
            let mut sim = SimState::new(&dag, &ClusterSpec::unit(1))
                .unwrap()
                .with_faults(plan(0.3, 2));
            // Claim exhaustion without the attempts to back it up.
            sim.faults.as_deref_mut().unwrap().exhausted = Some(TaskId::new(0));
            let err = InvariantAuditor::new().check(&dag, &sim).unwrap_err();
            assert_eq!(
                err,
                AuditViolation::FaultAccounting {
                    field: "exhausted_attempts",
                    recorded: 0,
                    derived: 3
                }
            );
        }
    }

    mod hetero {
        use super::*;
        use crate::{MachineSet, TransferMode};

        /// Two machines: a full-size box and a half-size box, over a slow
        /// direct network.
        fn spec() -> ClusterSpec {
            let machines = MachineSet::new(
                vec![
                    ResourceVec::from_slice(&[1.0]),
                    ResourceVec::from_slice(&[0.5]),
                ],
                vec![4, 2, 2, 4],
                TransferMode::Direct,
                7,
                16,
            )
            .unwrap();
            ClusterSpec::hetero(machines).unwrap()
        }

        #[test]
        fn clean_hetero_episode_passes_every_check() {
            let dag = diamond();
            let spec = spec();
            let mut sim = SimState::new(&dag, &spec).unwrap();
            let mut audit = InvariantAuditor::new();
            audit.check(&dag, &sim).unwrap();
            while !sim.is_terminal(&dag) {
                let actions = sim.legal_actions(&dag);
                sim.apply(&dag, actions[0]).unwrap();
                audit.check(&dag, &sim).unwrap();
            }
        }

        #[test]
        fn corrupted_machine_used_is_caught() {
            let dag = diamond();
            let spec = spec();
            let mut sim = SimState::new(&dag, &spec).unwrap();
            let place = sim
                .legal_actions(&dag)
                .into_iter()
                .find(|a| a.machine() == Some(0))
                .unwrap();
            sim.apply(&dag, place).unwrap();
            // Shrink machine 0's `used` while its `free` still reconciles
            // with the running set — only the per-machine used-vs-running
            // cross-check can see this.
            sim.hetero.as_deref_mut().unwrap().used[0] = ResourceVec::from_slice(&[0.1]);
            let err = InvariantAuditor::new().check(&dag, &sim).unwrap_err();
            assert!(matches!(
                err,
                AuditViolation::MachineUsedMismatch { machine: 0, .. }
            ));
        }

        #[test]
        fn inflated_machine_free_breaks_machine_conservation() {
            let dag = diamond();
            let spec = spec();
            let mut sim = SimState::new(&dag, &spec).unwrap();
            sim.hetero.as_deref_mut().unwrap().free[1] = ResourceVec::from_slice(&[0.9]);
            let err = InvariantAuditor::new().check(&dag, &sim).unwrap_err();
            assert!(matches!(
                err,
                AuditViolation::MachineConservation { machine: 1, .. }
            ));
        }

        #[test]
        fn dangling_machine_assignment_is_caught() {
            let dag = diamond();
            let spec = spec();
            let mut sim = SimState::new(&dag, &spec).unwrap();
            // Assign a machine to a task that never started.
            sim.hetero.as_deref_mut().unwrap().machine_of[2] = Some(1);
            let err = InvariantAuditor::new().check(&dag, &sim).unwrap_err();
            assert_eq!(
                err,
                AuditViolation::MachineAssignment {
                    task: TaskId::new(2)
                }
            );
        }

        #[test]
        fn transfer_gated_start_violation_is_caught() {
            let dag = diamond();
            let spec = spec();
            let machines = spec.machines().unwrap();
            let mut sim = SimState::new(&dag, &spec).unwrap();
            // Run the episode placing everything on machine 0 (no
            // transfers), then rewrite task 1's assignment to machine 1:
            // its recorded start now sits inside the re-derived transfer
            // window of the cross-machine edge 0 -> 1.
            while !sim.is_terminal(&dag) {
                let actions = sim.legal_actions(&dag);
                let a = actions
                    .iter()
                    .copied()
                    .find(|a| a.machine() == Some(0))
                    .unwrap_or(Action::Process);
                sim.apply(&dag, a).unwrap();
            }
            assert!(machines.edge_delay(0, 1, 0, 1) > 0);
            let h = sim.hetero.as_deref_mut().unwrap();
            h.machine_of[1] = Some(1);
            let err = InvariantAuditor::new().check(&dag, &sim).unwrap_err();
            assert!(matches!(
                err,
                AuditViolation::TransferGatedStart {
                    parent,
                    child,
                    ..
                } if parent == TaskId::new(0) && child == TaskId::new(1)
            ));
        }
    }

    mod corruption_properties {
        //! Property tests: whatever (reachable) state an episode is in,
        //! each class of injected corruption is rejected with the right
        //! [`AuditViolation`] — and, through [`EpisodeDriver`], surfaces
        //! as [`SpearError::Audit`] before any further action is taken.

        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use spear_dag::generator::LayeredDagSpec;

        use super::*;
        use crate::env::{EpisodeDriver, FnPolicy, NoRng, SimEnv};
        use crate::{Action, ClusterSpec, Running, SimState, SpearError};

        fn random_dag(num_tasks: usize, seed: u64) -> Dag {
            let spec = LayeredDagSpec {
                num_tasks,
                min_width: 1,
                max_width: 4,
                ..LayeredDagSpec::paper_simulation()
            };
            spec.generate(&mut StdRng::seed_from_u64(seed))
        }

        /// Steps a seeded random policy for up to `steps` actions,
        /// stopping early at terminal states.
        fn random_prefix(dag: &Dag, sim: &mut SimState, seed: u64, steps: usize) {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..steps {
                if sim.is_terminal(dag) {
                    break;
                }
                let legal = sim.legal_actions(dag);
                sim.apply(dag, legal[rng.gen_range(0..legal.len())])
                    .unwrap();
            }
        }

        /// Drives the corrupted state through an [`EpisodeDriver`] and
        /// returns the audit violation it must surface as
        /// [`SpearError::Audit`] before the first decision.
        fn driver_verdict(dag: &Dag, spec: &ClusterSpec, sim: SimState) -> AuditViolation {
            let mut env = SimEnv::from_state(dag, spec, sim);
            let mut driver = EpisodeDriver::new(FnPolicy(
                |_: &crate::env::EnvContext<'_>, _: &SimState, legal: &[Action]| legal[0],
            ))
            .with_audit(true);
            match driver.drive(&mut env, &mut NoRng, u64::MAX) {
                Err(SpearError::Audit(v)) => v,
                other => panic!("corrupted state was not rejected as an audit error: {other:?}"),
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// A running entry injected without resource accounting breaks
            /// conservation, whatever state the episode was in.
            #[test]
            fn injected_overcommit_is_rejected(
                num_tasks in 2usize..24,
                dag_seed in any::<u64>(),
                policy_seed in any::<u64>(),
                steps in 0usize..20,
            ) {
                let dag = random_dag(num_tasks, dag_seed);
                let spec = ClusterSpec::unit(2);
                let mut sim = SimState::new(&dag, &spec).unwrap();
                random_prefix(&dag, &mut sim, policy_seed, steps);
                let Some(&t) = sim.tracker.ready().first() else {
                    // Every task is already scheduled; nothing to inject.
                    return Ok(());
                };
                // Mimic schedule_unchecked but skip the `used` update.
                let finish = sim.clock + dag.task(t).runtime();
                sim.tracker.take(t);
                sim.running.push(Running { task: t, finish });
                sim.starts[t.index()] = Some(sim.clock);
                sim.scheduled += 1;
                sim.max_finish = sim.max_finish.max(finish);
                let v = driver_verdict(&dag, &spec, sim);
                prop_assert!(
                    matches!(v, AuditViolation::Conservation { .. }),
                    "expected Conservation, got {v}"
                );
            }

            /// Resetting the tracker re-lists an already-started source:
            /// a stale ready entry, caught as such.
            #[test]
            fn stale_ready_entry_is_rejected(
                num_tasks in 1usize..24,
                dag_seed in any::<u64>(),
            ) {
                let dag = random_dag(num_tasks, dag_seed);
                let spec = ClusterSpec::unit(2);
                let mut sim = SimState::new(&dag, &spec).unwrap();
                // The first legal action in any initial state schedules a
                // source (sources always fit an empty cluster).
                let legal = sim.legal_actions(&dag);
                sim.apply(&dag, legal[0]).unwrap();
                sim.tracker = ReadyTracker::new(&dag);
                let v = driver_verdict(&dag, &spec, sim);
                prop_assert!(
                    matches!(v, AuditViolation::StaleReady { .. }),
                    "expected StaleReady, got {v}"
                );
            }

            /// A fingerprint desynced from the state it summarizes is
            /// rejected before the first decision, whatever (reachable)
            /// state the episode was in.
            #[test]
            fn desynced_fingerprint_is_rejected(
                num_tasks in 2usize..24,
                dag_seed in any::<u64>(),
                policy_seed in any::<u64>(),
                steps in 0usize..20,
                flip in any::<u64>(),
            ) {
                let dag = random_dag(num_tasks, dag_seed);
                let spec = ClusterSpec::unit(2);
                let mut sim = SimState::new(&dag, &spec).unwrap();
                random_prefix(&dag, &mut sim, policy_seed, steps);
                // `| 1` guarantees at least one bit actually flips.
                sim.placement_hash ^= flip | 1;
                let v = driver_verdict(&dag, &spec, sim);
                prop_assert!(
                    matches!(v, AuditViolation::FingerprintDesync { .. }),
                    "expected FingerprintDesync, got {v}"
                );
            }

            /// A clock rewound mid-drive is caught as a regression on the
            /// very next audited step.
            #[test]
            fn rewound_clock_is_rejected(
                num_tasks in 1usize..24,
                dag_seed in any::<u64>(),
                policy_seed in any::<u64>(),
            ) {
                let dag = random_dag(num_tasks, dag_seed);
                let spec = ClusterSpec::unit(2);
                let mut sim = SimState::new(&dag, &spec).unwrap();
                // Run to termination so the clock is strictly positive.
                random_prefix(&dag, &mut sim, policy_seed, usize::MAX);
                prop_assert!(sim.clock() > 0);
                let mut audit = InvariantAuditor::new();
                audit.check(&dag, &sim).unwrap();
                sim.clock = 0;
                let v = audit.check(&dag, &sim).unwrap_err();
                prop_assert!(
                    matches!(v, AuditViolation::ClockRegression { .. }),
                    "expected ClockRegression, got {v}"
                );
            }
        }
    }

    #[test]
    fn violation_messages_are_nonempty() {
        let violations = [
            AuditViolation::UsedMismatch {
                dim: 0,
                used: 0.2,
                committed: 0.5,
            },
            AuditViolation::Conservation {
                dim: 0,
                free: 1.0,
                committed: 0.5,
                capacity: 1.0,
            },
            AuditViolation::FreeExceedsCapacity {
                dim: 1,
                free: 1.5,
                capacity: 1.0,
            },
            AuditViolation::ClockRegression { from: 5, to: 2 },
            AuditViolation::StartFinishMismatch {
                task: TaskId::new(0),
            },
            AuditViolation::StaleReady {
                task: TaskId::new(1),
            },
            AuditViolation::MissingReady {
                task: TaskId::new(2),
            },
            AuditViolation::CountMismatch {
                field: "completed",
                recorded: 1,
                derived: 2,
            },
            AuditViolation::FingerprintDesync {
                stored: 0xdead_beef,
                recomputed: 0xcafe_f00d,
            },
            AuditViolation::EarlyStart {
                task: TaskId::new(3),
                start: 2,
                arrival: 5,
            },
            AuditViolation::UnarrivedReady {
                task: TaskId::new(4),
            },
            AuditViolation::JobCountMismatch {
                job: 1,
                recorded: 0,
                derived: 1,
            },
            AuditViolation::RetryOverrun {
                task: TaskId::new(5),
                attempts: 4,
                max_attempts: 3,
            },
            AuditViolation::AttemptRegression {
                task: TaskId::new(6),
                from: 2,
                to: 1,
            },
            AuditViolation::FaultAccounting {
                field: "failed_runs",
                recorded: 3,
                derived: 2,
            },
            AuditViolation::MachineUsedMismatch {
                machine: 1,
                dim: 0,
                used: 0.2,
                committed: 0.5,
            },
            AuditViolation::MachineConservation {
                machine: 0,
                dim: 1,
                free: 1.0,
                committed: 0.5,
                capacity: 1.0,
            },
            AuditViolation::MachineAssignment {
                task: TaskId::new(7),
            },
            AuditViolation::TransferGatedStart {
                parent: TaskId::new(0),
                child: TaskId::new(1),
                start: 3,
                ready: 5,
            },
        ];
        for v in violations {
            assert!(!v.to_string().is_empty());
        }
    }
}
