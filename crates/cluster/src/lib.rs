//! The resource-time-space cluster simulator underlying every scheduler in
//! the Spear reproduction.
//!
//! The paper (§III-B) models the cluster as a *resource-time space*: one
//! rectangle per resource dimension, with width = capacity and height =
//! time. Tasks occupy sub-rectangles for their runtime. The scheduling agent
//! interacts with the cluster through the decoupled action space
//! `{schedule task i, process}`: scheduling freezes time and commits a ready
//! task that fits the free capacity; *process* advances the clock to the
//! next task completion.
//!
//! The central type is [`SimState`]: a cheaply cloneable simulation state
//! that MCTS snapshots per search node, the DRL agent featurizes, and the
//! baseline schedulers drive greedily. A finished simulation freezes into a
//! [`Schedule`], which can be [validated](Schedule::validate) against the
//! DAG and cluster capacity.
//!
//! # Example
//!
//! ```
//! use spear_dag::{DagBuilder, Task, ResourceVec};
//! use spear_cluster::{ClusterSpec, SimState, Action};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DagBuilder::new(1);
//! let a = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])));
//! let c = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.6])));
//! b.add_edge(a, c)?;
//! let dag = b.build()?;
//! let spec = ClusterSpec::new(ResourceVec::from_slice(&[1.0]))?;
//!
//! let mut sim = SimState::new(&dag, &spec)?;
//! sim.apply(&dag, Action::Schedule(a))?;
//! sim.apply(&dag, Action::Process)?; // a finishes at t=2
//! sim.apply(&dag, Action::Schedule(c))?;
//! sim.apply(&dag, Action::Process)?; // c finishes at t=5
//! assert_eq!(sim.makespan(), Some(5));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
pub mod audit;
pub mod env;
mod error;
pub mod faults;
pub mod hetero;
pub mod jobs;
mod schedule;
mod spec;
mod state;
mod timeline;

pub use action::Action;
pub use audit::{AuditViolation, InvariantAuditor};
pub use env::{
    DecisionPolicy, DriveOutcome, Env, EnvContext, EpisodeDriver, FnPolicy, MultiJobEnv, NoRng,
    SimEnv,
};
pub use error::{ClusterError, ErrorContext, SpearError};
pub use faults::{
    execute_multi_under_faults, execute_under_faults, execute_under_faults_audited, FailedRun,
    FaultOutcome, FaultPlan, FaultyRun, MultiFaultyRun,
};
pub use hetero::{MachineSet, TransferMode};
pub use jobs::{JctReport, JobCompletion, JobQueue, JobSpan};
pub use schedule::{Placement, Schedule};
pub use spec::ClusterSpec;
pub use state::{Running, SimState};
pub use timeline::ResourceTimeline;
