//! The cloneable simulation state.

use serde::{Deserialize, Serialize};
use spear_dag::topo::ReadyTracker;
use spear_dag::{Dag, ResourceVec, TaskId, FIT_EPSILON};

use crate::faults::{attempt_key, FailedRun, FaultOutcome, FaultPlan, FaultState};
use crate::hetero::MachineSet;
use crate::jobs::{JobQueue, MultiJob};
use crate::{Action, ClusterError, ClusterSpec, Placement, Schedule};

// --- State fingerprinting -------------------------------------------------
//
// `SimState::fingerprint` condenses the exact simulation state into 64
// bits so the DRL search can cache policy/value evaluations by state
// (see `spear-rl`'s `EvalCache`). Exactly one ingredient is maintained
// incrementally — the placement XOR-set, which would be `O(n)` to rebuild
// — and everything that is small at any instant (the running vector, the
// clock, `used` bit patterns) is folded in at read time. The split keeps
// the always-on maintenance cost at a single key mix per `Schedule`
// action (`Process` pays nothing), so pure-MCTS rollouts, which never
// read the fingerprint, stay within noise of the unfingerprinted
// simulator; the read-time fold is `O(cluster width)` and only runs on
// cache probes.
//
// The running-vector fold is *order-sensitive* on purpose: the
// featurizer renders the occupancy image by iterating `running` in vector
// order, and `swap_remove` makes that order history-dependent, so two
// states that differ only in running order can featurize differently.
// Likewise `used` is hashed by exact bit pattern because its low-order
// floating-point bits (a function of admission history) feed the
// legality mask through the sum-based admission rule. Equal fingerprints
// therefore imply bit-identical featurization, not merely logically
// equal states.

/// Seed of the read-time fingerprint fold (an arbitrary odd constant).
const FP_SEED: u64 = 0x5bd1_e995_9c3b_2f8d;

/// Seed of the frontier fingerprint fold — a distinct domain from
/// [`FP_SEED`] so the two key families never alias.
const FRONTIER_SEED: u64 = 0x27d4_eb2f_1656_67c5;

/// SplitMix64 finalizer: a cheap full-avalanche bijection on `u64`.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Zobrist-style key of one committed placement `(task, start)`. Start
/// times are unbounded, so keys are mixed on demand rather than drawn
/// from a pretabulated random table. A single finalizer over the odd-
/// multiplier combination keeps the per-`Schedule` maintenance cost to
/// one mix; distinct `(task, start)` pairs collide pre-mix only on a
/// 64-bit coincidence of the linear map.
#[inline]
fn placement_key(task: usize, start: u64) -> u64 {
    mix64(
        (task as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ start.wrapping_mul(0xff51_afd7_ed55_8ccd),
    )
}

/// Zobrist-style key of one committed placement `(task, start, machine)`
/// in the heterogeneous regime. Built on [`placement_key`] so the
/// single-box key family is untouched; the `+ 1` keeps machine 0 from
/// degenerating to a zero mix term.
#[inline]
fn hetero_placement_key(task: usize, start: u64, machine: u32) -> u64 {
    mix64(placement_key(task, start) ^ (u64::from(machine) + 1).wrapping_mul(0xd6e8_feb8_6659_fd93))
}

/// Order-sensitive fold of one component into the fingerprint.
#[inline]
fn fold(h: u64, v: u64) -> u64 {
    mix64(h.wrapping_add(mix64(v)))
}

/// Per-machine bookkeeping of a heterogeneous episode: the machine set
/// (capacities + network model), per-machine accounting mirroring the
/// global `used`/`free` pair, and each started task's machine. `None` on
/// single-box states, which therefore stay bit-identical to the
/// pre-hetero simulator (every hetero branch is behind the option).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct HeteroState {
    pub(crate) machines: MachineSet,
    /// Summed demand of the running set, per machine (the per-machine
    /// admission truth, same sum-based rule as the global `used`).
    pub(crate) used: Vec<ResourceVec>,
    /// Derived `max(0, capacity - used)` per machine.
    pub(crate) free: Vec<ResourceVec>,
    /// Machine of every started task (`None` before its start; retracted
    /// when a faulty attempt aborts).
    pub(crate) machine_of: Vec<Option<u32>>,
}

impl HeteroState {
    fn new(machines: MachineSet, num_tasks: usize) -> Self {
        let dims = machines.capacity(0).dims();
        let n = machines.len();
        HeteroState {
            free: machines.capacities().to_vec(),
            used: vec![ResourceVec::zeros(dims); n],
            machine_of: vec![None; num_tasks],
            machines,
        }
    }
}

/// A task currently occupying the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Running {
    /// The occupying task.
    pub task: TaskId,
    /// Absolute time slot at which it releases its resources.
    pub finish: u64,
}

/// The full state of a scheduling simulation: clock, free capacity, running
/// tasks, ready frontier and the placements committed so far.
///
/// `SimState` is intentionally `Clone`-cheap (a handful of `Vec`s) so that
/// MCTS can snapshot one per search-tree node. The DAG itself is *not* part
/// of the state — callers pass `&Dag` to each operation, which keeps clones
/// small and lets thousands of states share one graph.
///
/// The state machine accepts the two [`Action`]s of the paper's decoupled
/// action space and enforces their legality; see [`SimState::legal_actions`]
/// for the exact filter (which doubles as the paper's §III-C expansion
/// pruning).
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct SimState {
    // Fields are `pub(crate)` so the invariant auditor (`crate::audit`) can
    // cross-check them — and its tests can corrupt them — without widening
    // the public API.
    pub(crate) clock: u64,
    pub(crate) capacity: ResourceVec,
    // `used` is the accounting truth: the summed demand of the running set,
    // and the basis of every admission decision. Sum-based admission
    // (`used + demand <= capacity + FIT_EPSILON`) is order-independent and
    // cannot stack more than one epsilon of over-commit, unlike the
    // per-admission `demand <= free + FIT_EPSILON` rule it replaced, whose
    // saturating subtraction let epsilon debt survive partial completions
    // and made feasibility depend on the order tasks were admitted in.
    pub(crate) used: ResourceVec,
    // Derived view `max(0, capacity - used)`, refreshed after every
    // mutation of `used`; kept as a field so `free()` can return a
    // reference without allocating.
    pub(crate) free: ResourceVec,
    pub(crate) running: Vec<Running>,
    pub(crate) tracker: ReadyTracker,
    pub(crate) starts: Vec<Option<u64>>,
    pub(crate) scheduled: usize,
    pub(crate) max_finish: u64,
    // Incrementally maintained XOR-set hash behind `fingerprint()`: one
    // key per committed placement. Placements only accumulate, so
    // maintenance is a single XOR per `Schedule` action and `Process`
    // pays nothing. The invariant auditor recomputes it from scratch and
    // reports any drift as a caught violation rather than a silent wrong
    // cache hit.
    #[serde(default)]
    pub(crate) placement_hash: u64,
    // Arrival bookkeeping of a multi-job episode; `None` in the single-job
    // regime, which therefore stays bit-identical to the pre-multi-job
    // simulator (every multi branch below is behind this option). Boxed so
    // the single-job state grows by one pointer, not five vectors.
    #[serde(default)]
    pub(crate) multi: Option<Box<MultiJob>>,
    // Fault-injection bookkeeping; `None` in fault-free episodes, which
    // therefore stay bit-identical to the pre-fault simulator (every
    // fault branch below is behind this option). Boxed for the same
    // one-pointer-growth reason as `multi`.
    #[serde(default)]
    pub(crate) faults: Option<Box<FaultState>>,
    // Heterogeneous-cluster bookkeeping (per-machine accounting + network
    // model); `None` on single-box states, which therefore stay
    // bit-identical to the pre-hetero simulator. Boxed like `multi` and
    // `faults`.
    #[serde(default)]
    pub(crate) hetero: Option<Box<HeteroState>>,
}

// Manual `Clone` so `clone_from` reuses every interior allocation. MCTS
// clones one state per rollout; with `clone_from` into a persistent scratch
// state the steady-state rollout loop does zero heap allocations.
impl Clone for SimState {
    fn clone(&self) -> Self {
        SimState {
            clock: self.clock,
            capacity: self.capacity.clone(),
            used: self.used.clone(),
            free: self.free.clone(),
            running: self.running.clone(),
            tracker: self.tracker.clone(),
            starts: self.starts.clone(),
            scheduled: self.scheduled,
            max_finish: self.max_finish,
            placement_hash: self.placement_hash,
            multi: self.multi.clone(),
            faults: self.faults.clone(),
            hetero: self.hetero.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.clock = source.clock;
        self.capacity.clone_from(&source.capacity);
        self.used.clone_from(&source.used);
        self.free.clone_from(&source.free);
        self.running.clone_from(&source.running);
        self.tracker.clone_from(&source.tracker);
        self.starts.clone_from(&source.starts);
        self.scheduled = source.scheduled;
        self.max_finish = source.max_finish;
        self.placement_hash = source.placement_hash;
        match (&mut self.multi, &source.multi) {
            // Reuse the boxed bookkeeping's interior vectors.
            (Some(dst), Some(src)) => dst.as_mut().clone_from(src.as_ref()),
            (dst, src) => *dst = src.clone(),
        }
        match (&mut self.faults, &source.faults) {
            (Some(dst), Some(src)) => dst.as_mut().clone_from(src.as_ref()),
            (dst, src) => *dst = src.clone(),
        }
        match (&mut self.hetero, &source.hetero) {
            (Some(dst), Some(src)) => dst.as_mut().clone_from(src.as_ref()),
            (dst, src) => *dst = src.clone(),
        }
    }
}

impl SimState {
    /// Creates the initial state (time 0, empty cluster, sources ready).
    ///
    /// # Errors
    ///
    /// Fails if the DAG does not fit the cluster (dimension mismatch or a
    /// task demanding more than total capacity — such a task could never be
    /// scheduled and the simulation would deadlock).
    pub fn new(dag: &Dag, spec: &ClusterSpec) -> Result<Self, ClusterError> {
        spec.validate_dag(dag)?;
        Ok(SimState {
            clock: 0,
            capacity: spec.capacity().clone(),
            used: ResourceVec::zeros(spec.capacity().dims()),
            free: spec.capacity().clone(),
            running: Vec::new(),
            tracker: ReadyTracker::new(dag),
            starts: vec![None; dag.len()],
            scheduled: 0,
            max_finish: 0,
            placement_hash: 0,
            multi: None,
            faults: None,
            hetero: spec
                .machines()
                .map(|m| Box::new(HeteroState::new(m.clone(), dag.len()))),
        })
    }

    /// Attaches a fault plan to a *fresh* state (no task scheduled yet).
    /// A [`FaultPlan::none`] plan attaches nothing: the state stays
    /// bit-identical — same fingerprints, same serialization — to one
    /// that never saw a plan.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the simulation has already started.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        debug_assert_eq!(
            self.scheduled, 0,
            "fault plans must be attached before the simulation starts"
        );
        if !plan.is_none() {
            self.faults = Some(Box::new(FaultState::new(plan, self.starts.len())));
        }
        self
    }

    /// Creates the initial state of a multi-job episode over `queue`'s
    /// union DAG: time 0, empty cluster, and *only* the sources of jobs
    /// arriving at time 0 ready — later jobs' sources are withheld from
    /// the frontier until the clock crosses their arrival (a `Process`
    /// action advances to the earlier of the next task completion and the
    /// next arrival).
    ///
    /// A one-job queue arriving at time 0 steps action-for-action like
    /// [`SimState::new`] on the same DAG (the fingerprints differ — they
    /// fold the arrival bookkeeping — but legality, placements and the
    /// makespan are identical).
    ///
    /// # Errors
    ///
    /// Fails if the union DAG does not fit the cluster, exactly as
    /// [`SimState::new`].
    pub fn new_multi(queue: &JobQueue, spec: &ClusterSpec) -> Result<Self, ClusterError> {
        let dag = queue.union_dag();
        let mut state = SimState::new(dag, spec)?;
        let multi = MultiJob::new(queue);
        // `ReadyTracker::new` seeded every source; withhold them all and
        // let `advance_arrivals` re-inject the time-0 jobs, so arrival
        // injection has exactly one code path. Sources are the only tasks
        // that need gating — every other task has a pending parent in its
        // own job (cross-job edges do not exist in the union DAG).
        let withheld: Vec<TaskId> = state.tracker.ready().to_vec();
        for t in withheld {
            state.tracker.take(t);
        }
        state.multi = Some(Box::new(multi));
        state.advance_arrivals(dag);
        Ok(state)
    }

    /// Current simulation time.
    #[inline]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Free capacity at the current time: `max(0, capacity - used)` per
    /// dimension. This is a derived view for featurization and scoring;
    /// admission decisions compare against [`SimState::used`] directly so
    /// that feasibility is independent of admission order.
    #[inline]
    pub fn free(&self) -> &ResourceVec {
        &self.free
    }

    /// Summed demand of the running set — the accounting truth behind
    /// every admission decision. May exceed capacity by at most
    /// [`FIT_EPSILON`] per dimension (one epsilon-tolerant admission).
    #[inline]
    pub fn used(&self) -> &ResourceVec {
        &self.used
    }

    /// Total cluster capacity the state was created with.
    #[inline]
    pub fn capacity(&self) -> &ResourceVec {
        &self.capacity
    }

    /// Tasks currently occupying the cluster.
    pub fn running(&self) -> &[Running] {
        &self.running
    }

    /// Ready tasks (all parents completed, not yet scheduled), sorted by id.
    #[inline]
    pub fn ready(&self) -> &[TaskId] {
        self.tracker.ready()
    }

    /// Number of completed tasks.
    pub fn completed(&self) -> usize {
        self.tracker.completed()
    }

    /// Start time of `task`, if it has been scheduled.
    pub fn start_of(&self, task: TaskId) -> Option<u64> {
        self.starts[task.index()]
    }

    /// `true` once every task has been scheduled (they may still be
    /// running; the makespan is already determined at that point, but the
    /// simulation only becomes [terminal](Self::is_terminal) after the
    /// final `Process` actions retire them).
    #[inline]
    pub fn all_scheduled(&self) -> bool {
        self.scheduled == self.starts.len()
    }

    /// `true` when every task has completed — or a task exhausted its
    /// retry budget, which poisons the episode (see
    /// [`SimState::exhausted`]).
    #[inline]
    pub fn is_terminal(&self, dag: &Dag) -> bool {
        self.tracker.all_done(dag) || self.exhausted().is_some()
    }

    /// The makespan — the time the last task finishes — or `None` while
    /// some task is still unfinished.
    #[inline]
    pub fn makespan(&self) -> Option<u64> {
        (self.running.is_empty() && self.all_scheduled()).then_some(self.max_finish)
    }

    /// Largest finish time committed so far (a lower bound on the final
    /// makespan).
    pub fn max_finish(&self) -> u64 {
        self.max_finish
    }

    /// Earliest finish time among running tasks, if any.
    #[inline]
    pub fn earliest_finish(&self) -> Option<u64> {
        self.running.iter().map(|r| r.finish).min()
    }

    /// Whether this state runs a multi-job episode (created by
    /// [`SimState::new_multi`]).
    #[inline]
    pub fn is_multi_job(&self) -> bool {
        self.multi.is_some()
    }

    /// The attached fault plan, if any ([`SimState::with_faults`]).
    #[inline]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_deref().map(|f| &f.plan)
    }

    /// The task that exhausted its retry budget and poisoned the
    /// episode, if any. A poisoned state is [terminal](Self::is_terminal)
    /// but yields no schedule.
    #[inline]
    pub fn exhausted(&self) -> Option<TaskId> {
        self.faults.as_deref().and_then(|f| f.exhausted)
    }

    /// Execution attempts started for `task` (0 before its first start;
    /// always ≤ `max_retries + 1`). Without a fault plan every started
    /// task has exactly one attempt.
    #[inline]
    pub fn attempts_of(&self, task: TaskId) -> u32 {
        match self.faults.as_deref() {
            Some(f) => f.attempts[task.index()],
            None => u32::from(self.starts[task.index()].is_some()),
        }
    }

    /// Total failed execution attempts so far (0 without a fault plan).
    #[inline]
    pub fn fault_failures(&self) -> u64 {
        self.faults
            .as_deref()
            .map_or(0, |f| f.failed_runs.len() as u64)
    }

    /// Total straggling execution attempts started so far.
    #[inline]
    pub fn fault_straggles(&self) -> u64 {
        self.faults.as_deref().map_or(0, |f| f.straggles)
    }

    /// Every aborted execution attempt so far, in failure order. The
    /// capacity these runs held over `[start, end)` is part of the
    /// realized resource usage.
    #[inline]
    pub fn failed_runs(&self) -> &[FailedRun] {
        self.faults.as_deref().map_or(&[], |f| &f.failed_runs)
    }

    /// Clock of `task`'s most recent failed attempt, or `None` if it has
    /// never failed.
    pub fn last_failure_of(&self, task: TaskId) -> Option<u64> {
        let f = self.faults.as_deref()?;
        let i = task.index();
        let failed = f.attempts[i].saturating_sub(u32::from(self.starts[i].is_some()));
        (failed > 0).then_some(f.last_fail[i])
    }

    /// Slots the *current* (or final) execution attempt of `task`
    /// occupies the cluster for: its fault-free runtime unless the
    /// attached plan fails it early or straggles it long. Falls back to
    /// the plain runtime for never-started tasks and fault-free states —
    /// this is the effective-duration ground truth shared by
    /// [`SimState::into_schedule`], the invariant auditor and the
    /// fault-aware judges.
    pub fn run_slots_of(&self, dag: &Dag, task: TaskId) -> u64 {
        let runtime = dag.task(task).runtime();
        match self.faults.as_deref() {
            Some(f) if f.attempts[task.index()] > 0 => {
                f.plan
                    .run_slots(task, f.attempts[task.index()] - 1, runtime)
            }
            _ => runtime,
        }
    }

    /// Jobs whose arrival time the clock has not reached yet (0 in the
    /// single-job regime).
    #[inline]
    pub fn pending_jobs(&self) -> usize {
        self.multi.as_ref().map_or(0, |m| m.pending_jobs())
    }

    /// Arrived jobs with at least one uncompleted task (0 in the
    /// single-job regime).
    #[inline]
    pub fn jobs_in_flight(&self) -> usize {
        self.multi.as_ref().map_or(0, |m| m.jobs_in_flight())
    }

    /// Jobs whose every task has completed (0 in the single-job regime).
    #[inline]
    pub fn jobs_completed(&self) -> usize {
        self.multi.as_ref().map_or(0, |m| m.jobs_done)
    }

    /// Arrival time of the next not-yet-arrived job — always strictly
    /// after the current clock (jobs whose arrival the clock has reached
    /// are injected into the frontier eagerly).
    #[inline]
    pub fn next_arrival(&self) -> Option<u64> {
        self.multi.as_ref().and_then(|m| m.next_arrival_time())
    }

    /// The queue index of the job owning `task`, or `None` in the
    /// single-job regime.
    pub fn job_of(&self, task: TaskId) -> Option<usize> {
        self.multi.as_ref().map(|m| m.job_of(task.index()))
    }

    /// The arrival time of job `job` (queue order); `None` in the
    /// single-job regime or for an out-of-range index.
    pub fn arrival_of(&self, job: usize) -> Option<u64> {
        self.multi
            .as_ref()
            .and_then(|m| m.arrivals.get(job).copied())
    }

    /// Whether this state runs on a heterogeneous cluster (created from
    /// a spec with a [`MachineSet`]).
    #[inline]
    pub fn is_hetero(&self) -> bool {
        self.hetero.is_some()
    }

    /// The machine set of a heterogeneous state, if any.
    #[inline]
    pub fn machines(&self) -> Option<&MachineSet> {
        self.hetero.as_deref().map(|h| &h.machines)
    }

    /// Number of machines (1 in the single-box regime).
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.hetero.as_deref().map_or(1, |h| h.machines.len())
    }

    /// The machine `task` was placed on: `Some(0)` for every started task
    /// in the single-box regime, the placement machine in the
    /// heterogeneous regime, `None` before the task starts.
    #[inline]
    pub fn machine_of(&self, task: TaskId) -> Option<u32> {
        match self.hetero.as_deref() {
            Some(h) => h.machine_of[task.index()],
            None => self.starts[task.index()].map(|_| 0),
        }
    }

    /// Summed demand of the tasks running on machine `m` (the global
    /// `used` in the single-box regime).
    #[inline]
    pub fn machine_used(&self, m: u32) -> &ResourceVec {
        match self.hetero.as_deref() {
            Some(h) => &h.used[m as usize],
            None => &self.used,
        }
    }

    /// Free capacity of machine `m` (the global `free` in the single-box
    /// regime).
    #[inline]
    pub fn machine_free(&self, m: u32) -> &ResourceVec {
        match self.hetero.as_deref() {
            Some(h) => &h.free[m as usize],
            None => &self.free,
        }
    }

    /// Earliest slot at which `task` could start on machine `m` once its
    /// parents' outputs have arrived there: the max over parents of
    /// `parent_finish + transfer_delay`, 0 for sources or single-box
    /// states. Only meaningful for *ready* tasks (every parent started
    /// and finished).
    pub fn transfer_ready_on(&self, dag: &Dag, task: TaskId, m: u32) -> u64 {
        let Some(h) = self.hetero.as_deref() else {
            return 0;
        };
        let mut at = 0;
        for &p in dag.parents(task) {
            let start = self.starts[p.index()].expect("transfer_ready_on requires a ready task");
            let finish = start + self.run_slots_of(dag, p);
            let src = h.machine_of[p.index()].expect("completed parent has a machine");
            at = at.max(finish + h.machines.edge_delay(p.index(), task.index(), src, m));
        }
        at
    }

    /// Whether `task` is ready, fits machine `m`'s remaining capacity,
    /// and has every parent's output already transferred to `m`.
    pub fn can_schedule_on(&self, dag: &Dag, task: TaskId, m: u32) -> bool {
        if self.tracker.ready().binary_search(&task).is_err() {
            return false;
        }
        match self.hetero.as_deref() {
            Some(h) => {
                (m as usize) < h.machines.len()
                    && Self::admits_in(
                        &h.used[m as usize],
                        dag.task(task).demand(),
                        h.machines.capacity(m),
                    )
                    && self.transfer_ready_on(dag, task, m) <= self.clock
            }
            None => m == 0 && self.admits(dag.task(task).demand()),
        }
    }

    /// A 64-bit Zobrist-style fingerprint of the exact simulation state.
    /// The placement component is maintained incrementally by
    /// [`SimState::apply`]/[`SimState::apply_legal`] (one key XOR per
    /// `Schedule` action); the rest — the running vector, the clock, the
    /// `used` bit patterns — is small at any instant and folded in here,
    /// at read time, in `O(cluster width)`.
    ///
    /// The fingerprint covers everything the DRL featurizer reads:
    /// committed placements (an XOR-set of per-`(task, start)` keys — the
    /// ready frontier and completion set derive from placements, so they
    /// are covered transitively), the running vector *including its
    /// order*, the clock, and the exact bit patterns of the `used`
    /// accounting vector. Equal fingerprints therefore imply
    /// bit-identical featurization; see the `EvalCache` in `spear-rl`.
    /// For the coarser history-free key the policy cache uses, see
    /// [`SimState::frontier_fingerprint`].
    ///
    /// Collisions are possible in principle (64-bit hash of an unbounded
    /// state space) but are caught neither here nor by the cache — the
    /// collision-safety argument lives in DESIGN.md §9. Desyncs (a
    /// maintenance bug, not a collision) *are* caught: the invariant
    /// auditor recomputes the placement component from scratch.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fold_fingerprint(self.placement_hash)
    }

    /// Folds the given placement component with the read-time ones
    /// (running vector, clock, `used` bit patterns) into the final
    /// fingerprint. The sequential fold is order-sensitive, which is what
    /// makes the running component track vector order for free.
    pub(crate) fn fold_fingerprint(&self, placement: u64) -> u64 {
        let mut h = fold(FP_SEED, placement);
        for r in &self.running {
            h = fold(
                h,
                (r.task.index() as u64).wrapping_mul(0xc4ce_b9fe_1a85_ec53) ^ r.finish,
            );
        }
        h = fold(h, self.clock);
        for &u in self.used.as_slice() {
            h = fold(h, u.to_bits());
        }
        // Multi-job: the injected-prefix index pins the arrival progress.
        // Together with the clock (folded above) it determines the entire
        // remaining arrival stream — the arrival table itself is a
        // per-episode constant, and the eval caches are cleared per
        // episode. Single-job states fold nothing here, keeping their
        // fingerprints bit-identical to the pre-multi-job simulator.
        if let Some(multi) = &self.multi {
            h = fold(h, multi.next_arrival as u64);
        }
        // Fault injection: two states with identical placements but
        // different retry histories face different *future* outcomes
        // (the plan draws per attempt), so fold the attempt XOR-set.
        // Fault-free states fold nothing, staying bit-identical to the
        // pre-fault simulator.
        if let Some(f) = self.faults.as_deref() {
            h = fold(h, f.attempt_hash);
        }
        // Heterogeneous clusters: per-machine occupancy feeds admission
        // and featurization, so fold each machine's exact `used` bit
        // patterns (machine assignments themselves are covered by the
        // machine-aware placement keys). Single-box states fold nothing.
        if let Some(hs) = self.hetero.as_deref() {
            for mu in &hs.used {
                for &u in mu.as_slice() {
                    h = fold(h, u.to_bits());
                }
            }
        }
        h
    }

    /// A 64-bit fingerprint of the scheduling *frontier*: the ready set
    /// (already sorted by id), the running vector with clock-*relative*
    /// finish times (in vector order), the completion count, and the
    /// exact bit patterns of `used`. Unlike [`SimState::fingerprint`]
    /// it deliberately excludes committed placements and the absolute
    /// clock: two states that placed their *finished* work differently
    /// (or at different times) but arrived at the same frontier share a
    /// frontier fingerprint.
    ///
    /// This is exactly the information a frontier-local function of the
    /// state can read. The DRL featurizer is one: its occupancy image
    /// spans `[clock, clock + horizon)` (so only relative finishes
    /// matter), its ready slots and legality mask derive from the ready
    /// set, `used`, and static task data, and its globals from the
    /// ready/running/completed counts. Equal frontier fingerprints
    /// (absent a 64-bit collision) therefore imply bit-identical policy
    /// featurization — which is what lets the policy inference cache in
    /// `spear-rl` serve hits *across* decisions and rollout
    /// trajectories that merely reconverge to the same frontier. Value
    /// estimates do NOT qualify (they read the absolute clock and
    /// `max_finish`); the value cache keys on the full fingerprint.
    pub fn frontier_fingerprint(&self) -> u64 {
        let ready = self.tracker.ready();
        // Section lengths first, so (ready, running) item sequences of
        // different shapes can't fold to the same prefix.
        let mut h = fold(
            FRONTIER_SEED,
            (ready.len() as u64) | ((self.running.len() as u64) << 32),
        );
        for &t in ready {
            h = fold(h, (t.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        for r in &self.running {
            h = fold(
                h,
                (r.task.index() as u64).wrapping_mul(0xc4ce_b9fe_1a85_ec53)
                    ^ (r.finish - self.clock),
            );
        }
        h = fold(h, self.completed() as u64);
        for &u in self.used.as_slice() {
            h = fold(h, u.to_bits());
        }
        // Multi-job: two states with the same visible frontier but
        // different queued-arrival outlooks must not share a key, so fold
        // the pending-job count and the clock-*relative* distance to the
        // next arrival (relative, like the running finishes, to stay
        // history-free). Single-job states fold nothing.
        if let Some(multi) = &self.multi {
            h = fold(h, multi.pending_jobs() as u64);
            if let Some(arrival) = multi.next_arrival_time() {
                h = fold(h, arrival - self.clock);
            }
        }
        // Same argument as `fold_fingerprint`: retry history changes the
        // plan's future draws, so frontier-equal states with different
        // attempt counts must not alias.
        if let Some(f) = self.faults.as_deref() {
            h = fold(h, f.attempt_hash);
        }
        // Heterogeneous clusters: the legality mask depends on where
        // *completed* parents ran (transfer gating reads their finish
        // times and machines), which the frontier deliberately does not
        // capture. Rather than weaken the equal-fingerprint ⇒
        // equal-featurization contract, fold the full placement set and
        // the absolute clock back in: hetero frontier keys give up
        // cross-history cache hits but never alias states with different
        // transfer outlooks. Single-box states fold nothing.
        if let Some(hs) = self.hetero.as_deref() {
            h = fold(h, self.placement_hash);
            h = fold(h, self.clock);
            for mu in &hs.used {
                for &u in mu.as_slice() {
                    h = fold(h, u.to_bits());
                }
            }
        }
        h
    }

    /// Recomputes the incrementally maintained placement hash from
    /// scratch — the invariant auditor's ground truth for
    /// [`SimState::fingerprint`].
    pub(crate) fn recompute_placement_hash(&self) -> u64 {
        let mut placement = 0u64;
        for (i, start) in self.starts.iter().enumerate() {
            if let Some(s) = start {
                placement ^= match self.hetero.as_deref() {
                    Some(h) => hetero_placement_key(
                        i,
                        *s,
                        h.machine_of[i].expect("started task has a machine"),
                    ),
                    None => placement_key(i, *s),
                };
            }
        }
        placement
    }

    /// Sum-based feasibility: `used + demand <= capacity + FIT_EPSILON` in
    /// every dimension. The same arithmetic as `Schedule::validate` and the
    /// `ResourceTimeline`, so the three can never disagree about what fits.
    #[inline]
    fn admits(&self, demand: &ResourceVec) -> bool {
        debug_assert_eq!(demand.dims(), self.capacity.dims());
        Self::admits_in(&self.used, demand, &self.capacity)
    }

    /// The sum-based admission rule against an arbitrary `(used,
    /// capacity)` pair — shared by the global and the per-machine
    /// accounting so the two regimes can never disagree on arithmetic.
    #[inline]
    fn admits_in(used: &ResourceVec, demand: &ResourceVec, capacity: &ResourceVec) -> bool {
        used.as_slice()
            .iter()
            .zip(demand.as_slice())
            .zip(capacity.as_slice())
            .all(|((&u, &d), &c)| u + d <= c + FIT_EPSILON)
    }

    /// Whether `task` is ready and fits the remaining capacity — of the
    /// single box, or of *some* machine (with its transfers complete) in
    /// the heterogeneous regime.
    ///
    /// The ready set is kept sorted by id ([`ReadyTracker::ready`]), so
    /// membership is a binary search rather than a linear scan — this
    /// check sits on the search hot path via [`SimState::apply`].
    pub fn can_schedule(&self, dag: &Dag, task: TaskId) -> bool {
        if self.tracker.ready().binary_search(&task).is_err() {
            return false;
        }
        match self.hetero.as_deref() {
            Some(h) => (0..h.machines.len() as u32).any(|m| {
                Self::admits_in(
                    &h.used[m as usize],
                    dag.task(task).demand(),
                    h.machines.capacity(m),
                ) && self.transfer_ready_on(dag, task, m) <= self.clock
            }),
            None => self.admits(dag.task(task).demand()),
        }
    }

    /// Earliest future instant at which waiting alone (no completion, no
    /// arrival) unlocks a currently-blocked `(ready task, machine)` pair:
    /// the minimum pending transfer-release time. `None` when no such
    /// pair exists (or in the single-box regime, where starts are never
    /// transfer-gated).
    fn next_transfer_release(&self, dag: &Dag) -> Option<u64> {
        let h = self.hetero.as_deref()?;
        let mut next: Option<u64> = None;
        for &t in self.tracker.ready() {
            let demand = dag.task(t).demand();
            for m in 0..h.machines.len() as u32 {
                if !Self::admits_in(&h.used[m as usize], demand, h.machines.capacity(m)) {
                    continue;
                }
                let at = self.transfer_ready_on(dag, t, m);
                if at > self.clock {
                    next = Some(next.map_or(at, |n| n.min(at)));
                }
            }
        }
        next
    }

    /// The legal actions in this state, in deterministic order (schedules
    /// sorted by task id, then `Process`).
    ///
    /// This implements the paper's expansion filters (§III-C):
    ///
    /// 1. `Process` is only legal when the cluster is non-empty (otherwise
    ///    time could never advance).
    /// 2. `Schedule(t)` is only legal when `t` is ready *and fits the free
    ///    capacity right now* — i.e. it can start before the earliest finish
    ///    time of the running tasks. A ready task that does not fit now
    ///    gains nothing over waiting for the next completion, so it is
    ///    pruned.
    ///
    /// Returns an empty vector exactly in terminal states: if nothing runs,
    /// the frontier is non-empty (or the simulation finished) and every
    /// frontier task fits an empty cluster because [`SimState::new`]
    /// validated demands against total capacity.
    pub fn legal_actions(&self, dag: &Dag) -> Vec<Action> {
        let mut actions = Vec::new();
        self.legal_actions_into(dag, &mut actions);
        actions
    }

    /// Writes the legal actions into `out` (cleared first), in the same
    /// deterministic order as [`SimState::legal_actions`]. The buffer keeps
    /// its allocation across calls, so the MCTS rollout loop can enumerate
    /// actions without touching the heap in steady state.
    #[inline]
    pub fn legal_actions_into(&self, dag: &Dag, out: &mut Vec<Action>) {
        out.clear();
        // A retry-exhausted state is terminal (poisoned): no actions.
        if self.exhausted().is_some() {
            return;
        }
        if let Some(h) = self.hetero.as_deref() {
            // Heterogeneous regime: one `Place` per (ready task, machine)
            // pair that fits *and* has its parent transfers complete —
            // task-id-major, machine-minor order keeps the list
            // deterministic.
            for &t in self.tracker.ready() {
                let demand = dag.task(t).demand();
                for m in 0..h.machines.len() as u32 {
                    if Self::admits_in(&h.used[m as usize], demand, h.machines.capacity(m))
                        && self.transfer_ready_on(dag, t, m) <= self.clock
                    {
                        out.push(Action::Place(t, m));
                    }
                }
            }
        } else {
            for &t in self.tracker.ready() {
                if self.admits(dag.task(t).demand()) {
                    out.push(Action::Schedule(t));
                }
            }
        }
        // `Process` also covers a pure arrival event: with an idle cluster
        // but jobs still queued, advancing the clock to the next arrival is
        // the only way forward (and the only legal action when the arrived
        // frontier is exhausted). A pending inter-machine transfer is a
        // third kind of future event: a ready task that fits a machine but
        // whose inputs are still in flight makes waiting legal too.
        if !self.running.is_empty()
            || self.next_arrival().is_some()
            || self.next_transfer_release(dag).is_some()
        {
            out.push(Action::Process);
        }
    }

    /// Applies one action.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::TaskNotReady`] — scheduling a task whose parents
    ///   are incomplete (or that already ran).
    /// * [`ClusterError::InsufficientResources`] — scheduling a task that
    ///   does not fit the free capacity.
    /// * [`ClusterError::NothingRunning`] — processing an empty cluster.
    /// * [`ClusterError::SimulationFinished`] — any action on a terminal
    ///   state.
    pub fn apply(&mut self, dag: &Dag, action: Action) -> Result<(), ClusterError> {
        if self.is_terminal(dag) {
            return Err(ClusterError::SimulationFinished);
        }
        match action {
            Action::Schedule(task) => {
                if self.hetero.is_some() {
                    return Err(ClusterError::MachineRequired(task));
                }
                if self.tracker.ready().binary_search(&task).is_err() {
                    return Err(ClusterError::TaskNotReady(task));
                }
                if !self.admits(dag.task(task).demand()) {
                    return Err(ClusterError::InsufficientResources(task));
                }
                self.schedule_unchecked(dag, task, 0);
                Ok(())
            }
            Action::Place(task, machine) => {
                let Some(h) = self.hetero.as_deref() else {
                    // Single box: `Place { machine: 0 }` aliases
                    // `Schedule`; any other machine does not exist.
                    if machine != 0 {
                        return Err(ClusterError::MachineOutOfRange { task, machine });
                    }
                    return self.apply(dag, Action::Schedule(task));
                };
                if machine as usize >= h.machines.len() {
                    return Err(ClusterError::MachineOutOfRange { task, machine });
                }
                if self.tracker.ready().binary_search(&task).is_err() {
                    return Err(ClusterError::TaskNotReady(task));
                }
                if !Self::admits_in(
                    &h.used[machine as usize],
                    dag.task(task).demand(),
                    h.machines.capacity(machine),
                ) {
                    return Err(ClusterError::InsufficientResources(task));
                }
                if self.transfer_ready_on(dag, task, machine) > self.clock {
                    // Report the parent whose transfer is still in
                    // flight (the one gating the latest).
                    let parent = dag
                        .parents(task)
                        .iter()
                        .copied()
                        .max_by_key(|&p| {
                            let start = self.starts[p.index()].expect("ready task");
                            let finish = start + self.run_slots_of(dag, p);
                            let src = h.machine_of[p.index()].expect("completed parent");
                            finish + h.machines.edge_delay(p.index(), task.index(), src, machine)
                        })
                        .expect("a transfer-gated task has parents");
                    return Err(ClusterError::TransferViolation {
                        parent,
                        child: task,
                    });
                }
                self.schedule_unchecked(dag, task, machine);
                Ok(())
            }
            Action::Process => {
                if self.running.is_empty()
                    && self.next_arrival().is_none()
                    && self.next_transfer_release(dag).is_none()
                {
                    return Err(ClusterError::NothingRunning);
                }
                self.process_unchecked(dag);
                Ok(())
            }
        }
    }

    /// Applies an action known to be legal — i.e. one the caller just
    /// obtained from [`SimState::legal_actions_into`] on this exact state.
    /// Skips the legality re-checks of [`SimState::apply`] (they become
    /// `debug_assert`s), which matters in the MCTS rollout loop where every
    /// action is legal by construction.
    #[inline]
    pub fn apply_legal(&mut self, dag: &Dag, action: Action) {
        debug_assert!(!self.is_terminal(dag), "apply_legal on a terminal state");
        match action {
            Action::Schedule(task) => {
                debug_assert!(self.hetero.is_none(), "hetero states require Place");
                debug_assert!(self.tracker.ready().binary_search(&task).is_ok());
                debug_assert!(self.admits(dag.task(task).demand()));
                self.schedule_unchecked(dag, task, 0);
            }
            Action::Place(task, machine) => {
                debug_assert!(self.can_schedule_on(dag, task, machine));
                self.schedule_unchecked(dag, task, machine);
            }
            Action::Process => {
                debug_assert!(
                    !self.running.is_empty()
                        || self.next_arrival().is_some()
                        || self.next_transfer_release(dag).is_some()
                );
                self.process_unchecked(dag);
            }
        }
    }

    fn schedule_unchecked(&mut self, dag: &Dag, task: TaskId, machine: u32) {
        self.tracker.take(task);
        self.used.add_assign(dag.task(task).demand());
        if let Some(h) = self.hetero.as_deref_mut() {
            h.used[machine as usize].add_assign(dag.task(task).demand());
            h.machine_of[task.index()] = Some(machine);
        }
        self.refresh_free();
        // Under a fault plan the attempt starts *now*: the attempt
        // counter advances (with its fingerprint key) and the occupancy
        // stretches or truncates per the plan's seeded outcome.
        let slots = match self.faults.as_deref_mut() {
            Some(f) => {
                let i = task.index();
                let attempt = f.attempts[i];
                f.attempts[i] += 1;
                f.attempt_hash ^= attempt_key(i, attempt) ^ attempt_key(i, attempt + 1);
                let runtime = dag.task(task).runtime();
                match f.plan.outcome(task, attempt, runtime) {
                    FaultOutcome::None => runtime,
                    FaultOutcome::Fail { after } => after,
                    FaultOutcome::Straggle { slots } => {
                        f.straggles += 1;
                        slots
                    }
                }
            }
            None => dag.task(task).runtime(),
        };
        let finish = self.clock + slots;
        self.placement_hash ^= match self.hetero {
            Some(_) => hetero_placement_key(task.index(), self.clock, machine),
            None => placement_key(task.index(), self.clock),
        };
        self.running.push(Running { task, finish });
        self.starts[task.index()] = Some(self.clock);
        self.scheduled += 1;
        self.max_finish = self.max_finish.max(finish);
    }

    fn process_unchecked(&mut self, dag: &Dag) {
        // `Process` advances to the next *event*: the earliest running
        // finish, the next job arrival (multi-job regime), or the next
        // transfer release (heterogeneous regime, where a ready task may
        // be waiting only for a parent's output to arrive at a machine).
        let next = [
            self.earliest_finish(),
            self.next_arrival(),
            self.next_transfer_release(dag),
        ]
        .into_iter()
        .flatten()
        .min()
        .unwrap_or_else(|| {
            unreachable!("process_unchecked requires running tasks, arrivals or transfers")
        });
        self.clock = next;
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].finish == next {
                let done = self.running.swap_remove(i);
                // Saturating: adds and subtractions of the same demands do
                // not cancel exactly in floating point, so an empty cluster
                // could otherwise record a tiny negative `used`.
                self.used
                    .saturating_sub_assign(dag.task(done.task).demand());
                if let Some(h) = self.hetero.as_deref_mut() {
                    let m = h.machine_of[done.task.index()].expect("running task has a machine");
                    h.used[m as usize].saturating_sub_assign(dag.task(done.task).demand());
                }
                if self.attempt_failed(dag, done.task) {
                    // The attempt aborted: the resources are freed (above)
                    // but the task did not complete — its placement is
                    // retracted and it re-queues (or poisons the episode
                    // when its retry budget is spent). Dependencies need
                    // no repair: a failed task never released children.
                    self.retire_failed(done.task, next);
                } else {
                    self.tracker.complete_in_place(dag, done.task);
                    if let Some(multi) = self.multi.as_deref_mut() {
                        let job = multi.job_of(done.task.index());
                        multi.completed[job] += 1;
                        if multi.completed[job] as usize == multi.job_range(job).len() {
                            multi.jobs_done += 1;
                        }
                    }
                }
            } else {
                i += 1;
            }
        }
        self.advance_arrivals(dag);
        self.refresh_free();
    }

    /// Whether the retiring run of `task` is an aborted attempt (per the
    /// attached plan) rather than a completion.
    #[inline]
    fn attempt_failed(&self, dag: &Dag, task: TaskId) -> bool {
        self.faults.as_deref().is_some_and(|f| {
            matches!(
                f.plan
                    .outcome(task, f.attempts[task.index()] - 1, dag.task(task).runtime()),
                FaultOutcome::Fail { .. }
            )
        })
    }

    /// Retracts the placement of a just-aborted attempt of `task` at
    /// clock `now` and re-queues the task — or poisons the episode when
    /// its retry budget is exhausted. The caller has already freed the
    /// attempt's resources and removed it from the running set.
    fn retire_failed(&mut self, task: TaskId, now: u64) {
        let i = task.index();
        let start = self.starts[i]
            .take()
            .expect("a failing attempt was started");
        self.scheduled -= 1;
        // The placement XOR-set is self-inverse: re-keying the retracted
        // `(task, start)` pair removes exactly that placement. The
        // retracted machine is cleared too — a retried task may be placed
        // elsewhere.
        self.placement_hash ^= match self.hetero.as_deref_mut() {
            Some(h) => {
                let machine = h.machine_of[i]
                    .take()
                    .expect("failed attempt had a machine");
                hetero_placement_key(i, start, machine)
            }
            None => placement_key(i, start),
        };
        let f = self
            .faults
            .as_deref_mut()
            .expect("attempt_failed implies a fault state");
        f.failed_runs.push(FailedRun {
            task,
            start,
            end: now,
            attempt: f.attempts[i] - 1,
        });
        f.last_fail[i] = now;
        if f.attempts[i] >= f.plan.max_attempts() {
            // Keep the *first* exhaustion: it is the one that ended the
            // episode, and determinism demands a stable culprit.
            if f.exhausted.is_none() {
                f.exhausted = Some(task);
            }
        } else {
            self.tracker.insert_ready(task);
        }
    }

    /// Injects every job whose arrival time the clock has reached: its
    /// sources enter the ready frontier (non-source tasks are gated by
    /// their own parents). No-op in the single-job regime.
    fn advance_arrivals(&mut self, dag: &Dag) {
        let Some(multi) = self.multi.as_deref_mut() else {
            return;
        };
        while let Some(arrival) = multi.next_arrival_time() {
            if arrival > self.clock {
                break;
            }
            for task in multi.job_range(multi.next_arrival) {
                let task = TaskId::new(task);
                if dag.parents(task).is_empty() {
                    self.tracker.insert_ready(task);
                }
            }
            multi.next_arrival += 1;
        }
    }

    /// Rebuilds the derived `free` view from `capacity` and `used`. The
    /// saturating subtraction clamps at zero, so `free` never exceeds the
    /// capacity and never goes negative — even in the (legal) state where
    /// an epsilon-tolerant admission pushed `used` slightly past capacity.
    #[inline]
    fn refresh_free(&mut self) {
        self.free.clone_from(&self.capacity);
        self.free.saturating_sub_assign(&self.used);
        if let Some(h) = self.hetero.as_deref_mut() {
            for m in 0..h.machines.len() {
                h.free[m].clone_from(h.machines.capacity(m as u32));
                h.free[m].saturating_sub_assign(&h.used[m]);
            }
        }
    }

    /// Runs the simulation to completion, letting `policy` pick among the
    /// legal actions at every decision point. Returns the makespan.
    ///
    /// The `policy` closure receives the current state and its non-empty
    /// legal action list and must return one of those actions.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterError`] if the policy returns an illegal action.
    pub fn run_with<P>(&mut self, dag: &Dag, mut policy: P) -> Result<u64, ClusterError>
    where
        P: FnMut(&SimState, &[Action]) -> Action,
    {
        while !self.is_terminal(dag) {
            let actions = self.legal_actions(dag);
            debug_assert!(!actions.is_empty(), "non-terminal state with no actions");
            let action = policy(self, &actions);
            self.apply(dag, action)?;
        }
        Ok(self.max_finish)
    }

    /// Freezes a terminal state into a [`Schedule`]. Under a fault plan
    /// the placements are *realized*: each finish reflects the final
    /// attempt's effective occupancy (a straggler finishes later than
    /// `start + runtime`).
    ///
    /// # Panics
    ///
    /// Panics if the simulation is not terminal yet, or if it terminated
    /// by retry exhaustion (a poisoned episode has no schedule; check
    /// [`SimState::exhausted`] first).
    pub fn into_schedule(self, dag: &Dag) -> Schedule {
        assert!(
            self.is_terminal(dag),
            "cannot extract a schedule from an unfinished simulation"
        );
        assert!(
            self.exhausted().is_none(),
            "cannot extract a schedule from a retry-exhausted simulation"
        );
        let placements = self
            .starts
            .iter()
            .enumerate()
            .map(|(i, start)| {
                let task = TaskId::new(i);
                let start = start.expect("terminal state has all tasks scheduled");
                Placement {
                    task,
                    start,
                    finish: start + self.run_slots_of(dag, task),
                    machine: self.hetero.as_deref().map_or(0, |h| {
                        h.machine_of[i].expect("completed task has a machine")
                    }),
                }
            })
            .collect();
        Schedule::from_placements(placements, self.max_finish)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_dag::{DagBuilder, Task};

    fn two_independent() -> Dag {
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])));
        b.add_task(Task::new(3, ResourceVec::from_slice(&[0.6])));
        b.build().unwrap()
    }

    fn chain() -> Dag {
        let mut b = DagBuilder::new(1);
        let a = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
        let c = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.5])));
        b.add_edge(a, c).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn initial_state() {
        let dag = two_independent();
        let sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        assert_eq!(sim.clock(), 0);
        assert_eq!(sim.ready().len(), 2);
        assert!(sim.running().is_empty());
        assert!(!sim.is_terminal(&dag));
        assert_eq!(sim.makespan(), None);
    }

    #[test]
    fn tight_capacity_serializes_tasks() {
        let dag = two_independent(); // each task needs 0.6 of 1.0
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        // Second task no longer fits.
        assert_eq!(
            sim.apply(&dag, Action::Schedule(TaskId::new(1)))
                .unwrap_err(),
            ClusterError::InsufficientResources(TaskId::new(1))
        );
        sim.apply(&dag, Action::Process).unwrap();
        assert_eq!(sim.clock(), 2);
        sim.apply(&dag, Action::Schedule(TaskId::new(1))).unwrap();
        sim.apply(&dag, Action::Process).unwrap();
        assert_eq!(sim.makespan(), Some(5));
    }

    #[test]
    fn wide_capacity_runs_tasks_in_parallel() {
        let dag = two_independent();
        let spec = ClusterSpec::new(ResourceVec::from_slice(&[2.0])).unwrap();
        let mut sim = SimState::new(&dag, &spec).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(1))).unwrap();
        sim.apply(&dag, Action::Process).unwrap(); // t=2: task 0 done
        assert_eq!(sim.clock(), 2);
        assert_eq!(sim.completed(), 1);
        sim.apply(&dag, Action::Process).unwrap(); // t=3: task 1 done
        assert_eq!(sim.makespan(), Some(3));
    }

    #[test]
    fn dependencies_gate_readiness() {
        let dag = chain();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        assert_eq!(
            sim.apply(&dag, Action::Schedule(TaskId::new(1)))
                .unwrap_err(),
            ClusterError::TaskNotReady(TaskId::new(1))
        );
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        sim.apply(&dag, Action::Process).unwrap();
        assert_eq!(sim.ready(), &[TaskId::new(1)]);
    }

    #[test]
    fn process_requires_running_tasks() {
        let dag = chain();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        assert_eq!(
            sim.apply(&dag, Action::Process).unwrap_err(),
            ClusterError::NothingRunning
        );
    }

    #[test]
    fn legal_actions_filtering() {
        let dag = two_independent();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        // Initially: both tasks schedulable, no Process (empty cluster).
        let a0 = sim.legal_actions(&dag);
        assert_eq!(a0.len(), 2);
        assert!(!a0.contains(&Action::Process));
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        // Now: task 1 does not fit; only Process remains.
        assert_eq!(sim.legal_actions(&dag), vec![Action::Process]);
    }

    #[test]
    fn terminal_state_rejects_actions() {
        let dag = chain();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        let ms = sim.run_with(&dag, |_, actions| actions[0]).unwrap();
        assert_eq!(ms, 5);
        assert!(sim.is_terminal(&dag));
        assert_eq!(
            sim.apply(&dag, Action::Process).unwrap_err(),
            ClusterError::SimulationFinished
        );
    }

    #[test]
    fn process_retires_simultaneous_finishers_together() {
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.3])));
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.3])));
        let dag = b.build().unwrap();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(1))).unwrap();
        sim.apply(&dag, Action::Process).unwrap();
        assert_eq!(sim.completed(), 2);
        assert!(sim.is_terminal(&dag));
        assert_eq!(sim.makespan(), Some(2));
    }

    #[test]
    fn free_capacity_is_restored_after_completion() {
        let dag = two_independent();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        assert!((sim.free()[0] - 0.4).abs() < 1e-9);
        sim.apply(&dag, Action::Process).unwrap();
        assert!((sim.free()[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_epsilon_admissions_do_not_inflate_free_capacity() {
        // Each task demands slightly more than the full capacity — legal,
        // because feasibility tolerates FIT_EPSILON. The derived `free`
        // view saturates at zero while the task runs and must return to
        // exactly the capacity once it completes; the pre-fix sequential
        // bookkeeping instead drifted `free` up by one epsilon per cycle.
        let over = 1.0 + 0.9 * FIT_EPSILON;
        let cycles = 64;
        let mut b = DagBuilder::new(1);
        for _ in 0..cycles {
            b.add_task(Task::new(1, ResourceVec::from_slice(&[over])));
        }
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(1);
        let mut sim = SimState::new(&dag, &spec).unwrap();
        for i in 0..cycles {
            sim.apply(&dag, Action::Schedule(TaskId::new(i))).unwrap();
            sim.apply(&dag, Action::Process).unwrap();
            // The clamp makes this exact (not merely within FIT_EPSILON):
            // an idle cluster reports precisely its capacity as free.
            assert!(
                sim.free()[0] <= spec.capacity()[0],
                "free capacity drifted to {} after {} schedule/process cycles",
                sim.free()[0],
                i + 1
            );
        }
        assert!(sim.is_terminal(&dag));
        // With the clamp, free is restored to exactly the capacity.
        assert_eq!(sim.free()[0], spec.capacity()[0]);
    }

    #[test]
    fn epsilon_debt_does_not_survive_partial_completions() {
        // The bug the differential fuzzer caught: with the old
        // `demand <= free + FIT_EPSILON` admission rule, the saturating
        // subtraction forgot how far an epsilon-admission had overshot, so
        // after a *partial* completion the restored `free` overstated the
        // true residual and a further epsilon-admission could push the
        // concurrent usage past `capacity + FIT_EPSILON` — a schedule that
        // `Schedule::validate` and the `ResourceTimeline` then rejected.
        // Sum-based admission keeps one shared epsilon for the whole
        // running set.
        let eps = FIT_EPSILON;
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5 + 0.6 * eps])));
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5 + 0.2 * eps])));
        b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5 + 0.9 * eps])));
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(1);
        let mut sim = SimState::new(&dag, &spec).unwrap();
        // Both first tasks fit together: 1.0 + 0.8e-9 <= 1.0 + 1e-9.
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(1))).unwrap();
        sim.apply(&dag, Action::Process).unwrap(); // t=1: task 0 done
        assert_eq!(sim.clock(), 1);
        // Task 2 with the still-running task 1 would use 1.0 + 1.1e-9 —
        // past the shared epsilon. The old rule admitted it here.
        assert!(!sim.can_schedule(&dag, TaskId::new(2)));
        assert_eq!(
            sim.apply(&dag, Action::Schedule(TaskId::new(2)))
                .unwrap_err(),
            ClusterError::InsufficientResources(TaskId::new(2))
        );
        sim.apply(&dag, Action::Process).unwrap(); // t=2: task 1 done
        sim.apply(&dag, Action::Schedule(TaskId::new(2))).unwrap();
        sim.apply(&dag, Action::Process).unwrap();
        assert_eq!(sim.makespan(), Some(3));
        sim.into_schedule(&dag).validate(&dag, &spec).unwrap();
    }

    #[test]
    fn admission_is_independent_of_schedule_order() {
        // Sum-based admission must not care which same-clock task was
        // admitted first — the differential replay normalizes to task-id
        // order, and the old free-based rule could disagree with the
        // episode's own order near the epsilon boundary.
        let eps = FIT_EPSILON;
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5 + 0.6 * eps])));
        b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5 + 0.2 * eps])));
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(1);
        for order in [[0usize, 1], [1, 0]] {
            let mut sim = SimState::new(&dag, &spec).unwrap();
            for i in order {
                sim.apply(&dag, Action::Schedule(TaskId::new(i))).unwrap();
            }
            sim.apply(&dag, Action::Process).unwrap();
            assert_eq!(sim.makespan(), Some(1), "order {order:?}");
        }
    }

    #[test]
    fn into_schedule_produces_valid_schedule() {
        let dag = chain();
        let spec = ClusterSpec::unit(1);
        let mut sim = SimState::new(&dag, &spec).unwrap();
        sim.run_with(&dag, |_, actions| actions[0]).unwrap();
        let schedule = sim.into_schedule(&dag);
        assert_eq!(schedule.makespan(), 5);
        schedule.validate(&dag, &spec).unwrap();
    }

    #[test]
    #[should_panic(expected = "unfinished simulation")]
    fn into_schedule_panics_when_unfinished() {
        let dag = chain();
        let sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        let _ = sim.into_schedule(&dag);
    }

    #[test]
    fn fingerprint_stays_in_sync_with_recomputation() {
        let dag = two_independent();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        let check = |sim: &SimState| {
            assert_eq!(
                sim.recompute_placement_hash(),
                sim.placement_hash,
                "incremental placement hash drifted from recomputation"
            );
        };
        check(&sim);
        while !sim.is_terminal(&dag) {
            let actions = sim.legal_actions(&dag);
            sim.apply(&dag, actions[0]).unwrap();
            check(&sim);
        }
    }

    #[test]
    fn fingerprint_tracks_running_order() {
        // Two same-shape tasks admitted in opposite orders reach states
        // that are logically equivalent as *sets* but featurize
        // differently (the occupancy image follows vector order), so
        // their fingerprints must differ — and each must still agree
        // with the from-scratch placement recomputation.
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.3])));
        b.add_task(Task::new(3, ResourceVec::from_slice(&[0.3])));
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(1);
        let fp = |order: [usize; 2]| {
            let mut sim = SimState::new(&dag, &spec).unwrap();
            for i in order {
                sim.apply(&dag, Action::Schedule(TaskId::new(i))).unwrap();
            }
            assert_eq!(sim.recompute_placement_hash(), sim.placement_hash);
            sim.fingerprint()
        };
        assert_ne!(fp([0, 1]), fp([1, 0]));
    }

    #[test]
    fn frontier_fingerprint_ignores_finished_history() {
        // Four independent tasks with dyadic demands: E and A (runtime 1),
        // B (runtime 2), C (never scheduled). Two histories:
        //   P1: E@0 and A@0 co-run, process (both finish), B@1
        //   P2: E@0, process, A@1, process, B@2
        // Both arrive at the same frontier — ready {C}, running [(B,
        // rel-finish 2)], 2 completed, identical `used` bits (dyadic
        // arithmetic is exact) — but with different placements and
        // clocks. The frontier fingerprints must agree while the full
        // fingerprints differ.
        let mut b = DagBuilder::new(1);
        let e = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5])));
        let a = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5])));
        let t_b = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
        let _c = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5])));
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(1);
        let run = |actions: &[Action]| {
            let mut sim = SimState::new(&dag, &spec).unwrap();
            for &action in actions {
                sim.apply(&dag, action).unwrap();
            }
            sim
        };
        let p1 = run(&[
            Action::Schedule(e),
            Action::Schedule(a),
            Action::Process,
            Action::Schedule(t_b),
        ]);
        let p2 = run(&[
            Action::Schedule(e),
            Action::Process,
            Action::Schedule(a),
            Action::Process,
            Action::Schedule(t_b),
        ]);
        assert_eq!(p1.ready(), p2.ready());
        assert_eq!(p1.completed(), p2.completed());
        assert_ne!(p1.clock(), p2.clock());
        assert_eq!(
            p1.frontier_fingerprint(),
            p2.frontier_fingerprint(),
            "same frontier must share a frontier fingerprint"
        );
        assert_ne!(
            p1.fingerprint(),
            p2.fingerprint(),
            "different histories must keep distinct full fingerprints"
        );
        // And a genuinely different frontier must not collide.
        let p3 = run(&[Action::Schedule(e), Action::Schedule(t_b)]);
        assert_ne!(p1.frontier_fingerprint(), p3.frontier_fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_states_and_clones_preserve_it() {
        let dag = two_independent();
        let sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        let initial = sim.fingerprint();
        let mut a = sim.clone();
        assert_eq!(a.fingerprint(), initial);
        a.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        assert_ne!(a.fingerprint(), initial);
        let mut b = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        b.clone_from(&a);
        assert_eq!(b.fingerprint(), a.fingerprint());
    }

    mod multi_job {
        use super::*;
        use crate::JobQueue;

        fn one_task_job(runtime: u64, demand: f64) -> Dag {
            let mut b = DagBuilder::new(1);
            b.add_task(Task::new(runtime, ResourceVec::from_slice(&[demand])));
            b.build().unwrap()
        }

        #[test]
        fn arrivals_gate_the_frontier_and_process_advances_to_them() {
            // Job 0 arrives at 0 (runtime 2), job 1 at 5 (runtime 2).
            let queue =
                JobQueue::new(vec![(0, one_task_job(2, 0.6)), (5, one_task_job(2, 0.6))]).unwrap();
            let dag = queue.union_dag();
            let mut sim = SimState::new_multi(&queue, &ClusterSpec::unit(1)).unwrap();
            // Only job 0's source is visible initially.
            assert_eq!(sim.ready(), &[TaskId::new(0)]);
            assert_eq!(sim.pending_jobs(), 1);
            assert_eq!(sim.next_arrival(), Some(5));
            sim.apply(dag, Action::Schedule(TaskId::new(0))).unwrap();
            sim.apply(dag, Action::Process).unwrap();
            // Job 0 done at t=2; the cluster idles but job 1 is queued, so
            // Process is legal and jumps the clock to the arrival.
            assert_eq!(sim.clock(), 2);
            assert_eq!(sim.jobs_completed(), 1);
            assert!(sim.ready().is_empty());
            assert_eq!(sim.legal_actions(dag), vec![Action::Process]);
            sim.apply(dag, Action::Process).unwrap();
            assert_eq!(sim.clock(), 5);
            assert_eq!(sim.ready(), &[TaskId::new(1)]);
            assert_eq!(sim.pending_jobs(), 0);
            assert_eq!(sim.next_arrival(), None);
            sim.apply(dag, Action::Schedule(TaskId::new(1))).unwrap();
            sim.apply(dag, Action::Process).unwrap();
            assert!(sim.is_terminal(dag));
            assert_eq!(sim.makespan(), Some(7));
            assert_eq!(sim.jobs_completed(), 2);
            assert_eq!(sim.job_of(TaskId::new(1)), Some(1));
            assert_eq!(sim.arrival_of(1), Some(5));
        }

        #[test]
        fn arrival_during_a_run_joins_the_frontier_at_the_finish() {
            // Job 0 runs until t=4; job 1 arrives at 3 — Process advances
            // to the arrival first, injects job 1 mid-run, and the two
            // can overlap on a wide cluster.
            let queue =
                JobQueue::new(vec![(0, one_task_job(4, 0.4)), (3, one_task_job(2, 0.4))]).unwrap();
            let dag = queue.union_dag();
            let mut sim = SimState::new_multi(&queue, &ClusterSpec::unit(1)).unwrap();
            sim.apply(dag, Action::Schedule(TaskId::new(0))).unwrap();
            sim.apply(dag, Action::Process).unwrap();
            // Clock stops at the arrival (3), not the finish (4).
            assert_eq!(sim.clock(), 3);
            assert_eq!(sim.running().len(), 1);
            assert_eq!(sim.ready(), &[TaskId::new(1)]);
            sim.apply(dag, Action::Schedule(TaskId::new(1))).unwrap();
            sim.apply(dag, Action::Process).unwrap(); // t=4: job 0 done
            sim.apply(dag, Action::Process).unwrap(); // t=5: job 1 done
            assert_eq!(sim.makespan(), Some(5));
        }

        #[test]
        fn tasks_never_start_before_their_jobs_arrival() {
            let queue =
                JobQueue::new(vec![(0, one_task_job(1, 0.3)), (4, one_task_job(1, 0.3))]).unwrap();
            let dag = queue.union_dag();
            let mut sim = SimState::new_multi(&queue, &ClusterSpec::unit(1)).unwrap();
            // Job 1's source is not ready before its arrival.
            assert_eq!(
                sim.apply(dag, Action::Schedule(TaskId::new(1)))
                    .unwrap_err(),
                ClusterError::TaskNotReady(TaskId::new(1))
            );
            sim.run_with(dag, |_, actions| actions[0]).unwrap();
            assert!(sim.start_of(TaskId::new(1)).unwrap() >= 4);
        }

        #[test]
        fn degenerate_single_job_queue_matches_single_job_stepping() {
            // One job arriving at 0: same legality sequence, same
            // schedule as the plain single-job state.
            let mut b = DagBuilder::new(1);
            let a = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
            let c = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.5])));
            b.add_edge(a, c).unwrap();
            let dag = b.build().unwrap();
            let spec = ClusterSpec::unit(1);
            let queue = JobQueue::single(dag.clone()).unwrap();

            let mut single = SimState::new(&dag, &spec).unwrap();
            let mut multi = SimState::new_multi(&queue, &spec).unwrap();
            assert!(multi.is_multi_job() && !single.is_multi_job());
            while !single.is_terminal(&dag) {
                let legal_single = single.legal_actions(&dag);
                let legal_multi = multi.legal_actions(queue.union_dag());
                assert_eq!(legal_single, legal_multi);
                single.apply(&dag, legal_single[0]).unwrap();
                multi.apply(queue.union_dag(), legal_multi[0]).unwrap();
                assert_eq!(single.clock(), multi.clock());
            }
            assert!(multi.is_terminal(queue.union_dag()));
            assert_eq!(single.makespan(), multi.makespan());
            assert_eq!(
                single.into_schedule(&dag),
                multi.into_schedule(queue.union_dag())
            );
        }

        #[test]
        fn fingerprints_track_arrival_progress() {
            // Two states at the same clock with the same (empty) frontier
            // but different numbers of pending arrivals must not share a
            // frontier fingerprint.
            let queue =
                JobQueue::new(vec![(0, one_task_job(2, 0.6)), (6, one_task_job(2, 0.6))]).unwrap();
            let dag = queue.union_dag();
            let mut sim = SimState::new_multi(&queue, &ClusterSpec::unit(1)).unwrap();
            sim.apply(dag, Action::Schedule(TaskId::new(0))).unwrap();
            sim.apply(dag, Action::Process).unwrap(); // t=2, idle, 1 pending
            let before = sim.frontier_fingerprint();
            let full_before = sim.fingerprint();
            sim.apply(dag, Action::Process).unwrap(); // t=6: arrival injected
            assert_ne!(sim.frontier_fingerprint(), before);
            assert_ne!(sim.fingerprint(), full_before);
            // And the incremental placement hash still agrees with the
            // from-scratch recomputation.
            assert_eq!(sim.recompute_placement_hash(), sim.placement_hash);
        }

        #[test]
        fn jct_report_partial_counts_unfinished_jobs() {
            let queue =
                JobQueue::new(vec![(0, one_task_job(2, 0.6)), (5, one_task_job(2, 0.6))]).unwrap();
            let dag = queue.union_dag();
            let mut sim = SimState::new_multi(&queue, &ClusterSpec::unit(1)).unwrap();
            sim.apply(dag, Action::Schedule(TaskId::new(0))).unwrap();
            let mid = queue.jct_report_partial(&sim);
            assert_eq!(mid.completions().len(), 1); // job 0 fully scheduled
            assert_eq!(mid.unfinished(), 1);
            sim.run_with(dag, |_, actions| actions[0]).unwrap();
            let done = queue.jct_report_partial(&sim);
            assert_eq!(done.completions().len(), 2);
            assert_eq!(done.unfinished(), 0);
            assert_eq!(done.completions()[1].jct, 2); // arrived 5, ran 5..7
        }
    }

    mod faults {
        use super::*;
        use crate::faults::FaultPlan;

        /// A plan whose every attempt of every task fails.
        fn always_fail(max_retries: u32) -> FaultPlan {
            FaultPlan {
                seed: 5,
                fail_rate: 1.0,
                straggler_rate: 0.0,
                straggler_factor: 1.0,
                max_retries,
            }
        }

        #[test]
        fn none_plan_attaches_nothing_and_stays_bit_identical() {
            let dag = chain();
            let spec = ClusterSpec::unit(1);
            let plain = SimState::new(&dag, &spec).unwrap();
            let mut faulty = SimState::new(&dag, &spec)
                .unwrap()
                .with_faults(FaultPlan::none());
            assert!(faulty.faults.is_none());
            assert_eq!(plain, faulty);
            assert_eq!(plain.fingerprint(), faulty.fingerprint());
            faulty.run_with(&dag, |_, actions| actions[0]).unwrap();
            assert_eq!(faulty.makespan(), Some(5));
        }

        #[test]
        fn failure_frees_resources_retracts_the_placement_and_requeues() {
            let dag = chain();
            let spec = ClusterSpec::unit(1);
            let mut sim = SimState::new(&dag, &spec)
                .unwrap()
                .with_faults(always_fail(3));
            sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
            let first_finish = sim.running()[0].finish;
            assert!(
                first_finish <= 2,
                "failed attempt must not outlive the runtime"
            );
            sim.apply(&dag, Action::Process).unwrap();
            // The attempt aborted: resources back, placement retracted,
            // task ready again, child still gated.
            assert_eq!(sim.free()[0], 1.0);
            assert_eq!(sim.start_of(TaskId::new(0)), None);
            assert_eq!(sim.ready(), &[TaskId::new(0)]);
            assert_eq!(sim.completed(), 0);
            assert_eq!(sim.attempts_of(TaskId::new(0)), 1);
            assert_eq!(sim.fault_failures(), 1);
            assert_eq!(sim.last_failure_of(TaskId::new(0)), Some(sim.clock()));
            assert_eq!(sim.recompute_placement_hash(), sim.placement_hash);
        }

        #[test]
        fn exhausted_retries_poison_the_episode() {
            let dag = chain();
            let spec = ClusterSpec::unit(1);
            let mut sim = SimState::new(&dag, &spec)
                .unwrap()
                .with_faults(always_fail(1));
            // max_retries = 1 → two attempts allowed, both fail.
            for _ in 0..2 {
                assert!(sim.exhausted().is_none());
                sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
                sim.apply(&dag, Action::Process).unwrap();
            }
            assert_eq!(sim.exhausted(), Some(TaskId::new(0)));
            assert!(sim.is_terminal(&dag));
            assert!(sim.legal_actions(&dag).is_empty());
            assert_eq!(sim.makespan(), None);
            assert_eq!(
                sim.apply(&dag, Action::Process).unwrap_err(),
                ClusterError::SimulationFinished
            );
        }

        #[test]
        #[should_panic(expected = "retry-exhausted")]
        fn into_schedule_panics_on_a_poisoned_episode() {
            let dag = chain();
            let mut sim = SimState::new(&dag, &ClusterSpec::unit(1))
                .unwrap()
                .with_faults(always_fail(0));
            sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
            sim.apply(&dag, Action::Process).unwrap();
            let _ = sim.into_schedule(&dag);
        }

        #[test]
        fn retry_history_changes_the_fingerprints() {
            // Drive two copies of the same state to the same frontier —
            // one suffering a failure and retrying, one not — and check
            // the attempt fold keeps their fingerprints distinct when
            // their *visible* frontiers re-converge.
            let dag = chain();
            let spec = ClusterSpec::unit(1);
            let mut sim = SimState::new(&dag, &spec)
                .unwrap()
                .with_faults(always_fail(5));
            let fresh = sim.fingerprint();
            sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
            sim.apply(&dag, Action::Process).unwrap();
            // Placement retracted: the placement component is back to the
            // fresh value, but the attempt fold must keep the states
            // distinct (the next attempt draws different luck).
            assert_eq!(sim.recompute_placement_hash(), 0);
            assert_ne!(sim.fingerprint(), fresh);
        }

        #[test]
        fn stragglers_stretch_occupancy_without_failing() {
            let plan = FaultPlan {
                seed: 0,
                fail_rate: 0.0,
                straggler_rate: 1.0,
                straggler_factor: 2.5,
                max_retries: 0,
            };
            let dag = chain(); // runtimes 2 then 3
            let spec = ClusterSpec::unit(1);
            let mut sim = SimState::new(&dag, &spec).unwrap().with_faults(plan);
            sim.run_with(&dag, |_, actions| actions[0]).unwrap();
            // Both tasks straggle by 2.5×: 5 + 8 slots back to back.
            assert_eq!(sim.makespan(), Some(13));
            assert_eq!(sim.fault_straggles(), 2);
            assert_eq!(sim.fault_failures(), 0);
            let schedule = sim.into_schedule(&dag);
            assert_eq!(schedule.placements()[0].finish, 5);
            assert_eq!(schedule.placements()[1].finish, 13);
        }

        #[test]
        fn simultaneous_failures_requeue_deterministically() {
            // Two independent equal tasks fail at the same slot; rerunning
            // the whole episode must reproduce the identical state stream.
            let dag = two_independent();
            let spec = ClusterSpec::new(ResourceVec::from_slice(&[2.0])).unwrap();
            let run = || {
                let mut sim = SimState::new(&dag, &spec)
                    .unwrap()
                    .with_faults(always_fail(4));
                let mut trail = Vec::new();
                sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
                sim.apply(&dag, Action::Schedule(TaskId::new(1))).unwrap();
                trail.push(sim.fingerprint());
                while !sim.is_terminal(&dag) {
                    let actions = sim.legal_actions(&dag);
                    sim.apply(&dag, actions[0]).unwrap();
                    trail.push(sim.fingerprint());
                }
                (trail, sim.ready().to_vec())
            };
            let (a, ready_a) = run();
            let (b, ready_b) = run();
            assert_eq!(a, b);
            assert_eq!(ready_a, ready_b);
        }
    }

    #[test]
    fn run_with_always_offers_nonempty_actions() {
        let dag = chain();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        sim.run_with(&dag, |_, actions| {
            assert!(!actions.is_empty());
            actions[0]
        })
        .unwrap();
    }

    mod hetero {
        use super::*;
        use crate::{MachineSet, TransferMode};

        /// Two unit machines, bandwidth 1, `max_edge_bytes` 1: every
        /// cross-machine edge costs exactly one transfer slot.
        fn two_machine_spec() -> ClusterSpec {
            let machines = MachineSet::uniform(
                2,
                ResourceVec::from_slice(&[1.0]),
                1,
                TransferMode::Direct,
                0,
                1,
            )
            .unwrap();
            ClusterSpec::hetero(machines).unwrap()
        }

        #[test]
        fn place_tracks_per_machine_accounting_and_transfer_gating() {
            let dag = chain(); // t0 (2 slots) -> t1 (3 slots), 0.5 each
            let spec = two_machine_spec();
            let mut sim = SimState::new(&dag, &spec).unwrap();
            assert!(sim.is_hetero());
            assert_eq!(sim.num_machines(), 2);

            sim.apply(&dag, Action::Place(TaskId::new(0), 0)).unwrap();
            assert_eq!(sim.machine_of(TaskId::new(0)), Some(0));
            assert_eq!(sim.machine_used(0).as_slice(), &[0.5]);
            assert_eq!(sim.machine_free(0).as_slice(), &[0.5]);
            assert_eq!(sim.machine_used(1).as_slice(), &[0.0]);

            sim.apply(&dag, Action::Process).unwrap();
            assert_eq!(sim.clock(), 2);
            assert_eq!(sim.machine_used(0).as_slice(), &[0.0]);

            // t1's input finished on machine 0 at t=2: it can start on
            // machine 0 immediately, but machine 1 only after the one-slot
            // transfer — so the legal list offers the co-located `Place`
            // plus `Process` (waiting for the transfer release).
            assert_eq!(
                sim.legal_actions(&dag),
                vec![Action::Place(TaskId::new(1), 0), Action::Process]
            );
            assert_eq!(
                sim.apply(&dag, Action::Place(TaskId::new(1), 1))
                    .unwrap_err(),
                ClusterError::TransferViolation {
                    parent: TaskId::new(0),
                    child: TaskId::new(1)
                }
            );

            // `Process` on an idle cluster advances to the transfer
            // release, after which the cross-machine start is legal.
            sim.apply(&dag, Action::Process).unwrap();
            assert_eq!(sim.clock(), 3);
            sim.apply(&dag, Action::Place(TaskId::new(1), 1)).unwrap();
            assert_eq!(sim.machine_of(TaskId::new(1)), Some(1));
            sim.apply(&dag, Action::Process).unwrap();
            assert_eq!(sim.makespan(), Some(6));
        }

        #[test]
        fn schedule_requires_a_machine_and_single_box_place_aliases_it() {
            let dag = chain();
            let mut sim = SimState::new(&dag, &two_machine_spec()).unwrap();
            assert_eq!(
                sim.apply(&dag, Action::Schedule(TaskId::new(0)))
                    .unwrap_err(),
                ClusterError::MachineRequired(TaskId::new(0))
            );
            assert_eq!(
                sim.apply(&dag, Action::Place(TaskId::new(0), 2))
                    .unwrap_err(),
                ClusterError::MachineOutOfRange {
                    task: TaskId::new(0),
                    machine: 2
                }
            );
            // On a single box `Place(t, 0)` aliases `Schedule`; any other
            // machine index does not exist.
            let mut single = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
            assert_eq!(
                single
                    .apply(&dag, Action::Place(TaskId::new(0), 1))
                    .unwrap_err(),
                ClusterError::MachineOutOfRange {
                    task: TaskId::new(0),
                    machine: 1
                }
            );
            single
                .apply(&dag, Action::Place(TaskId::new(0), 0))
                .unwrap();
            assert_eq!(single.start_of(TaskId::new(0)), Some(0));
        }

        #[test]
        fn degenerate_one_machine_stepping_matches_the_single_box() {
            // A 1-machine hetero spec has no cross-machine links, so the
            // same greedy decisions yield the same clocks, accounting and
            // final schedule as the plain single-box simulator (the
            // fingerprints differ by design: hetero states fold the
            // placement set back in).
            let dag = chain();
            let machines = MachineSet::uniform(
                1,
                ResourceVec::from_slice(&[1.0]),
                1,
                TransferMode::Direct,
                0,
                1,
            )
            .unwrap();
            let hetero_spec = ClusterSpec::hetero(machines).unwrap();
            let mut h = SimState::new(&dag, &hetero_spec).unwrap();
            let mut s = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
            while !s.is_terminal(&dag) {
                let action = s.legal_actions(&dag)[0];
                s.apply(&dag, action).unwrap();
                let mirrored = match action {
                    Action::Schedule(t) => Action::Place(t, 0),
                    other => other,
                };
                h.apply(&dag, mirrored).unwrap();
                assert_eq!(h.clock(), s.clock());
                assert_eq!(h.used().as_slice(), s.used().as_slice());
                assert_eq!(h.free().as_slice(), s.free().as_slice());
            }
            assert!(h.is_terminal(&dag));
            assert_eq!(h.makespan(), s.makespan());
            let hs = h.into_schedule(&dag);
            let ss = s.into_schedule(&dag);
            assert_eq!(hs.placements(), ss.placements());
            hs.validate(&dag, &hetero_spec).unwrap();
        }
    }
}
