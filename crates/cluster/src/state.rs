//! The cloneable simulation state.

use serde::{Deserialize, Serialize};
use spear_dag::topo::ReadyTracker;
use spear_dag::{Dag, ResourceVec, TaskId, FIT_EPSILON};

use crate::{Action, ClusterError, ClusterSpec, Placement, Schedule};

// --- State fingerprinting -------------------------------------------------
//
// `SimState::fingerprint` condenses the exact simulation state into 64
// bits so the DRL search can cache policy/value evaluations by state
// (see `spear-rl`'s `EvalCache`). Exactly one ingredient is maintained
// incrementally — the placement XOR-set, which would be `O(n)` to rebuild
// — and everything that is small at any instant (the running vector, the
// clock, `used` bit patterns) is folded in at read time. The split keeps
// the always-on maintenance cost at a single key mix per `Schedule`
// action (`Process` pays nothing), so pure-MCTS rollouts, which never
// read the fingerprint, stay within noise of the unfingerprinted
// simulator; the read-time fold is `O(cluster width)` and only runs on
// cache probes.
//
// The running-vector fold is *order-sensitive* on purpose: the
// featurizer renders the occupancy image by iterating `running` in vector
// order, and `swap_remove` makes that order history-dependent, so two
// states that differ only in running order can featurize differently.
// Likewise `used` is hashed by exact bit pattern because its low-order
// floating-point bits (a function of admission history) feed the
// legality mask through the sum-based admission rule. Equal fingerprints
// therefore imply bit-identical featurization, not merely logically
// equal states.

/// Seed of the read-time fingerprint fold (an arbitrary odd constant).
const FP_SEED: u64 = 0x5bd1_e995_9c3b_2f8d;

/// Seed of the frontier fingerprint fold — a distinct domain from
/// [`FP_SEED`] so the two key families never alias.
const FRONTIER_SEED: u64 = 0x27d4_eb2f_1656_67c5;

/// SplitMix64 finalizer: a cheap full-avalanche bijection on `u64`.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Zobrist-style key of one committed placement `(task, start)`. Start
/// times are unbounded, so keys are mixed on demand rather than drawn
/// from a pretabulated random table. A single finalizer over the odd-
/// multiplier combination keeps the per-`Schedule` maintenance cost to
/// one mix; distinct `(task, start)` pairs collide pre-mix only on a
/// 64-bit coincidence of the linear map.
#[inline]
fn placement_key(task: usize, start: u64) -> u64 {
    mix64(
        (task as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ start.wrapping_mul(0xff51_afd7_ed55_8ccd),
    )
}

/// Order-sensitive fold of one component into the fingerprint.
#[inline]
fn fold(h: u64, v: u64) -> u64 {
    mix64(h.wrapping_add(mix64(v)))
}

/// A task currently occupying the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Running {
    /// The occupying task.
    pub task: TaskId,
    /// Absolute time slot at which it releases its resources.
    pub finish: u64,
}

/// The full state of a scheduling simulation: clock, free capacity, running
/// tasks, ready frontier and the placements committed so far.
///
/// `SimState` is intentionally `Clone`-cheap (a handful of `Vec`s) so that
/// MCTS can snapshot one per search-tree node. The DAG itself is *not* part
/// of the state — callers pass `&Dag` to each operation, which keeps clones
/// small and lets thousands of states share one graph.
///
/// The state machine accepts the two [`Action`]s of the paper's decoupled
/// action space and enforces their legality; see [`SimState::legal_actions`]
/// for the exact filter (which doubles as the paper's §III-C expansion
/// pruning).
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct SimState {
    // Fields are `pub(crate)` so the invariant auditor (`crate::audit`) can
    // cross-check them — and its tests can corrupt them — without widening
    // the public API.
    pub(crate) clock: u64,
    pub(crate) capacity: ResourceVec,
    // `used` is the accounting truth: the summed demand of the running set,
    // and the basis of every admission decision. Sum-based admission
    // (`used + demand <= capacity + FIT_EPSILON`) is order-independent and
    // cannot stack more than one epsilon of over-commit, unlike the
    // per-admission `demand <= free + FIT_EPSILON` rule it replaced, whose
    // saturating subtraction let epsilon debt survive partial completions
    // and made feasibility depend on the order tasks were admitted in.
    pub(crate) used: ResourceVec,
    // Derived view `max(0, capacity - used)`, refreshed after every
    // mutation of `used`; kept as a field so `free()` can return a
    // reference without allocating.
    pub(crate) free: ResourceVec,
    pub(crate) running: Vec<Running>,
    pub(crate) tracker: ReadyTracker,
    pub(crate) starts: Vec<Option<u64>>,
    pub(crate) scheduled: usize,
    pub(crate) max_finish: u64,
    // Incrementally maintained XOR-set hash behind `fingerprint()`: one
    // key per committed placement. Placements only accumulate, so
    // maintenance is a single XOR per `Schedule` action and `Process`
    // pays nothing. The invariant auditor recomputes it from scratch and
    // reports any drift as a caught violation rather than a silent wrong
    // cache hit.
    #[serde(default)]
    pub(crate) placement_hash: u64,
}

// Manual `Clone` so `clone_from` reuses every interior allocation. MCTS
// clones one state per rollout; with `clone_from` into a persistent scratch
// state the steady-state rollout loop does zero heap allocations.
impl Clone for SimState {
    fn clone(&self) -> Self {
        SimState {
            clock: self.clock,
            capacity: self.capacity.clone(),
            used: self.used.clone(),
            free: self.free.clone(),
            running: self.running.clone(),
            tracker: self.tracker.clone(),
            starts: self.starts.clone(),
            scheduled: self.scheduled,
            max_finish: self.max_finish,
            placement_hash: self.placement_hash,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.clock = source.clock;
        self.capacity.clone_from(&source.capacity);
        self.used.clone_from(&source.used);
        self.free.clone_from(&source.free);
        self.running.clone_from(&source.running);
        self.tracker.clone_from(&source.tracker);
        self.starts.clone_from(&source.starts);
        self.scheduled = source.scheduled;
        self.max_finish = source.max_finish;
        self.placement_hash = source.placement_hash;
    }
}

impl SimState {
    /// Creates the initial state (time 0, empty cluster, sources ready).
    ///
    /// # Errors
    ///
    /// Fails if the DAG does not fit the cluster (dimension mismatch or a
    /// task demanding more than total capacity — such a task could never be
    /// scheduled and the simulation would deadlock).
    pub fn new(dag: &Dag, spec: &ClusterSpec) -> Result<Self, ClusterError> {
        spec.validate_dag(dag)?;
        Ok(SimState {
            clock: 0,
            capacity: spec.capacity().clone(),
            used: ResourceVec::zeros(spec.capacity().dims()),
            free: spec.capacity().clone(),
            running: Vec::new(),
            tracker: ReadyTracker::new(dag),
            starts: vec![None; dag.len()],
            scheduled: 0,
            max_finish: 0,
            placement_hash: 0,
        })
    }

    /// Current simulation time.
    #[inline]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Free capacity at the current time: `max(0, capacity - used)` per
    /// dimension. This is a derived view for featurization and scoring;
    /// admission decisions compare against [`SimState::used`] directly so
    /// that feasibility is independent of admission order.
    #[inline]
    pub fn free(&self) -> &ResourceVec {
        &self.free
    }

    /// Summed demand of the running set — the accounting truth behind
    /// every admission decision. May exceed capacity by at most
    /// [`FIT_EPSILON`] per dimension (one epsilon-tolerant admission).
    #[inline]
    pub fn used(&self) -> &ResourceVec {
        &self.used
    }

    /// Total cluster capacity the state was created with.
    #[inline]
    pub fn capacity(&self) -> &ResourceVec {
        &self.capacity
    }

    /// Tasks currently occupying the cluster.
    pub fn running(&self) -> &[Running] {
        &self.running
    }

    /// Ready tasks (all parents completed, not yet scheduled), sorted by id.
    #[inline]
    pub fn ready(&self) -> &[TaskId] {
        self.tracker.ready()
    }

    /// Number of completed tasks.
    pub fn completed(&self) -> usize {
        self.tracker.completed()
    }

    /// Start time of `task`, if it has been scheduled.
    pub fn start_of(&self, task: TaskId) -> Option<u64> {
        self.starts[task.index()]
    }

    /// `true` once every task has been scheduled (they may still be
    /// running; the makespan is already determined at that point, but the
    /// simulation only becomes [terminal](Self::is_terminal) after the
    /// final `Process` actions retire them).
    #[inline]
    pub fn all_scheduled(&self) -> bool {
        self.scheduled == self.starts.len()
    }

    /// `true` when every task has completed.
    #[inline]
    pub fn is_terminal(&self, dag: &Dag) -> bool {
        self.tracker.all_done(dag)
    }

    /// The makespan — the time the last task finishes — or `None` while
    /// some task is still unfinished.
    #[inline]
    pub fn makespan(&self) -> Option<u64> {
        (self.running.is_empty() && self.all_scheduled()).then_some(self.max_finish)
    }

    /// Largest finish time committed so far (a lower bound on the final
    /// makespan).
    pub fn max_finish(&self) -> u64 {
        self.max_finish
    }

    /// Earliest finish time among running tasks, if any.
    #[inline]
    pub fn earliest_finish(&self) -> Option<u64> {
        self.running.iter().map(|r| r.finish).min()
    }

    /// A 64-bit Zobrist-style fingerprint of the exact simulation state.
    /// The placement component is maintained incrementally by
    /// [`SimState::apply`]/[`SimState::apply_legal`] (one key XOR per
    /// `Schedule` action); the rest — the running vector, the clock, the
    /// `used` bit patterns — is small at any instant and folded in here,
    /// at read time, in `O(cluster width)`.
    ///
    /// The fingerprint covers everything the DRL featurizer reads:
    /// committed placements (an XOR-set of per-`(task, start)` keys — the
    /// ready frontier and completion set derive from placements, so they
    /// are covered transitively), the running vector *including its
    /// order*, the clock, and the exact bit patterns of the `used`
    /// accounting vector. Equal fingerprints therefore imply
    /// bit-identical featurization; see the `EvalCache` in `spear-rl`.
    /// For the coarser history-free key the policy cache uses, see
    /// [`SimState::frontier_fingerprint`].
    ///
    /// Collisions are possible in principle (64-bit hash of an unbounded
    /// state space) but are caught neither here nor by the cache — the
    /// collision-safety argument lives in DESIGN.md §9. Desyncs (a
    /// maintenance bug, not a collision) *are* caught: the invariant
    /// auditor recomputes the placement component from scratch.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fold_fingerprint(self.placement_hash)
    }

    /// Folds the given placement component with the read-time ones
    /// (running vector, clock, `used` bit patterns) into the final
    /// fingerprint. The sequential fold is order-sensitive, which is what
    /// makes the running component track vector order for free.
    pub(crate) fn fold_fingerprint(&self, placement: u64) -> u64 {
        let mut h = fold(FP_SEED, placement);
        for r in &self.running {
            h = fold(
                h,
                (r.task.index() as u64).wrapping_mul(0xc4ce_b9fe_1a85_ec53) ^ r.finish,
            );
        }
        h = fold(h, self.clock);
        for &u in self.used.as_slice() {
            h = fold(h, u.to_bits());
        }
        h
    }

    /// A 64-bit fingerprint of the scheduling *frontier*: the ready set
    /// (already sorted by id), the running vector with clock-*relative*
    /// finish times (in vector order), the completion count, and the
    /// exact bit patterns of `used`. Unlike [`SimState::fingerprint`]
    /// it deliberately excludes committed placements and the absolute
    /// clock: two states that placed their *finished* work differently
    /// (or at different times) but arrived at the same frontier share a
    /// frontier fingerprint.
    ///
    /// This is exactly the information a frontier-local function of the
    /// state can read. The DRL featurizer is one: its occupancy image
    /// spans `[clock, clock + horizon)` (so only relative finishes
    /// matter), its ready slots and legality mask derive from the ready
    /// set, `used`, and static task data, and its globals from the
    /// ready/running/completed counts. Equal frontier fingerprints
    /// (absent a 64-bit collision) therefore imply bit-identical policy
    /// featurization — which is what lets the policy inference cache in
    /// `spear-rl` serve hits *across* decisions and rollout
    /// trajectories that merely reconverge to the same frontier. Value
    /// estimates do NOT qualify (they read the absolute clock and
    /// `max_finish`); the value cache keys on the full fingerprint.
    pub fn frontier_fingerprint(&self) -> u64 {
        let ready = self.tracker.ready();
        // Section lengths first, so (ready, running) item sequences of
        // different shapes can't fold to the same prefix.
        let mut h = fold(
            FRONTIER_SEED,
            (ready.len() as u64) | ((self.running.len() as u64) << 32),
        );
        for &t in ready {
            h = fold(h, (t.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        for r in &self.running {
            h = fold(
                h,
                (r.task.index() as u64).wrapping_mul(0xc4ce_b9fe_1a85_ec53)
                    ^ (r.finish - self.clock),
            );
        }
        h = fold(h, self.completed() as u64);
        for &u in self.used.as_slice() {
            h = fold(h, u.to_bits());
        }
        h
    }

    /// Recomputes the incrementally maintained placement hash from
    /// scratch — the invariant auditor's ground truth for
    /// [`SimState::fingerprint`].
    pub(crate) fn recompute_placement_hash(&self) -> u64 {
        let mut placement = 0u64;
        for (i, start) in self.starts.iter().enumerate() {
            if let Some(s) = start {
                placement ^= placement_key(i, *s);
            }
        }
        placement
    }

    /// Sum-based feasibility: `used + demand <= capacity + FIT_EPSILON` in
    /// every dimension. The same arithmetic as `Schedule::validate` and the
    /// `ResourceTimeline`, so the three can never disagree about what fits.
    #[inline]
    fn admits(&self, demand: &ResourceVec) -> bool {
        debug_assert_eq!(demand.dims(), self.capacity.dims());
        self.used
            .as_slice()
            .iter()
            .zip(demand.as_slice())
            .zip(self.capacity.as_slice())
            .all(|((&u, &d), &c)| u + d <= c + FIT_EPSILON)
    }

    /// Whether `task` is ready and fits the remaining capacity.
    pub fn can_schedule(&self, dag: &Dag, task: TaskId) -> bool {
        self.tracker.ready().contains(&task) && self.admits(dag.task(task).demand())
    }

    /// The legal actions in this state, in deterministic order (schedules
    /// sorted by task id, then `Process`).
    ///
    /// This implements the paper's expansion filters (§III-C):
    ///
    /// 1. `Process` is only legal when the cluster is non-empty (otherwise
    ///    time could never advance).
    /// 2. `Schedule(t)` is only legal when `t` is ready *and fits the free
    ///    capacity right now* — i.e. it can start before the earliest finish
    ///    time of the running tasks. A ready task that does not fit now
    ///    gains nothing over waiting for the next completion, so it is
    ///    pruned.
    ///
    /// Returns an empty vector exactly in terminal states: if nothing runs,
    /// the frontier is non-empty (or the simulation finished) and every
    /// frontier task fits an empty cluster because [`SimState::new`]
    /// validated demands against total capacity.
    pub fn legal_actions(&self, dag: &Dag) -> Vec<Action> {
        let mut actions = Vec::new();
        self.legal_actions_into(dag, &mut actions);
        actions
    }

    /// Writes the legal actions into `out` (cleared first), in the same
    /// deterministic order as [`SimState::legal_actions`]. The buffer keeps
    /// its allocation across calls, so the MCTS rollout loop can enumerate
    /// actions without touching the heap in steady state.
    #[inline]
    pub fn legal_actions_into(&self, dag: &Dag, out: &mut Vec<Action>) {
        out.clear();
        for &t in self.tracker.ready() {
            if self.admits(dag.task(t).demand()) {
                out.push(Action::Schedule(t));
            }
        }
        if !self.running.is_empty() {
            out.push(Action::Process);
        }
    }

    /// Applies one action.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::TaskNotReady`] — scheduling a task whose parents
    ///   are incomplete (or that already ran).
    /// * [`ClusterError::InsufficientResources`] — scheduling a task that
    ///   does not fit the free capacity.
    /// * [`ClusterError::NothingRunning`] — processing an empty cluster.
    /// * [`ClusterError::SimulationFinished`] — any action on a terminal
    ///   state.
    pub fn apply(&mut self, dag: &Dag, action: Action) -> Result<(), ClusterError> {
        if self.is_terminal(dag) {
            return Err(ClusterError::SimulationFinished);
        }
        match action {
            Action::Schedule(task) => {
                if !self.tracker.ready().contains(&task) {
                    return Err(ClusterError::TaskNotReady(task));
                }
                if !self.admits(dag.task(task).demand()) {
                    return Err(ClusterError::InsufficientResources(task));
                }
                self.schedule_unchecked(dag, task);
                Ok(())
            }
            Action::Process => {
                if self.running.is_empty() {
                    return Err(ClusterError::NothingRunning);
                }
                self.process_unchecked(dag);
                Ok(())
            }
        }
    }

    /// Applies an action known to be legal — i.e. one the caller just
    /// obtained from [`SimState::legal_actions_into`] on this exact state.
    /// Skips the legality re-checks of [`SimState::apply`] (they become
    /// `debug_assert`s), which matters in the MCTS rollout loop where every
    /// action is legal by construction.
    #[inline]
    pub fn apply_legal(&mut self, dag: &Dag, action: Action) {
        debug_assert!(!self.is_terminal(dag), "apply_legal on a terminal state");
        match action {
            Action::Schedule(task) => {
                debug_assert!(self.tracker.ready().contains(&task));
                debug_assert!(self.admits(dag.task(task).demand()));
                self.schedule_unchecked(dag, task);
            }
            Action::Process => {
                debug_assert!(!self.running.is_empty());
                self.process_unchecked(dag);
            }
        }
    }

    fn schedule_unchecked(&mut self, dag: &Dag, task: TaskId) {
        self.tracker.take(task);
        self.used.add_assign(dag.task(task).demand());
        self.refresh_free();
        let finish = self.clock + dag.task(task).runtime();
        self.placement_hash ^= placement_key(task.index(), self.clock);
        self.running.push(Running { task, finish });
        self.starts[task.index()] = Some(self.clock);
        self.scheduled += 1;
        self.max_finish = self.max_finish.max(finish);
    }

    fn process_unchecked(&mut self, dag: &Dag) {
        let next = self
            .earliest_finish()
            .expect("process_unchecked requires running tasks");
        self.clock = next;
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].finish == next {
                let done = self.running.swap_remove(i);
                // Saturating: adds and subtractions of the same demands do
                // not cancel exactly in floating point, so an empty cluster
                // could otherwise record a tiny negative `used`.
                self.used
                    .saturating_sub_assign(dag.task(done.task).demand());
                self.tracker.complete_in_place(dag, done.task);
            } else {
                i += 1;
            }
        }
        self.refresh_free();
    }

    /// Rebuilds the derived `free` view from `capacity` and `used`. The
    /// saturating subtraction clamps at zero, so `free` never exceeds the
    /// capacity and never goes negative — even in the (legal) state where
    /// an epsilon-tolerant admission pushed `used` slightly past capacity.
    #[inline]
    fn refresh_free(&mut self) {
        self.free.clone_from(&self.capacity);
        self.free.saturating_sub_assign(&self.used);
    }

    /// Runs the simulation to completion, letting `policy` pick among the
    /// legal actions at every decision point. Returns the makespan.
    ///
    /// The `policy` closure receives the current state and its non-empty
    /// legal action list and must return one of those actions.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterError`] if the policy returns an illegal action.
    pub fn run_with<P>(&mut self, dag: &Dag, mut policy: P) -> Result<u64, ClusterError>
    where
        P: FnMut(&SimState, &[Action]) -> Action,
    {
        while !self.is_terminal(dag) {
            let actions = self.legal_actions(dag);
            debug_assert!(!actions.is_empty(), "non-terminal state with no actions");
            let action = policy(self, &actions);
            self.apply(dag, action)?;
        }
        Ok(self.max_finish)
    }

    /// Freezes a terminal state into a [`Schedule`].
    ///
    /// # Panics
    ///
    /// Panics if the simulation is not terminal yet.
    pub fn into_schedule(self, dag: &Dag) -> Schedule {
        assert!(
            self.is_terminal(dag),
            "cannot extract a schedule from an unfinished simulation"
        );
        let placements = self
            .starts
            .iter()
            .enumerate()
            .map(|(i, start)| {
                let task = TaskId::new(i);
                let start = start.expect("terminal state has all tasks scheduled");
                Placement {
                    task,
                    start,
                    finish: start + dag.task(task).runtime(),
                }
            })
            .collect();
        Schedule::from_placements(placements, self.max_finish)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_dag::{DagBuilder, Task};

    fn two_independent() -> Dag {
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])));
        b.add_task(Task::new(3, ResourceVec::from_slice(&[0.6])));
        b.build().unwrap()
    }

    fn chain() -> Dag {
        let mut b = DagBuilder::new(1);
        let a = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
        let c = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.5])));
        b.add_edge(a, c).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn initial_state() {
        let dag = two_independent();
        let sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        assert_eq!(sim.clock(), 0);
        assert_eq!(sim.ready().len(), 2);
        assert!(sim.running().is_empty());
        assert!(!sim.is_terminal(&dag));
        assert_eq!(sim.makespan(), None);
    }

    #[test]
    fn tight_capacity_serializes_tasks() {
        let dag = two_independent(); // each task needs 0.6 of 1.0
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        // Second task no longer fits.
        assert_eq!(
            sim.apply(&dag, Action::Schedule(TaskId::new(1)))
                .unwrap_err(),
            ClusterError::InsufficientResources(TaskId::new(1))
        );
        sim.apply(&dag, Action::Process).unwrap();
        assert_eq!(sim.clock(), 2);
        sim.apply(&dag, Action::Schedule(TaskId::new(1))).unwrap();
        sim.apply(&dag, Action::Process).unwrap();
        assert_eq!(sim.makespan(), Some(5));
    }

    #[test]
    fn wide_capacity_runs_tasks_in_parallel() {
        let dag = two_independent();
        let spec = ClusterSpec::new(ResourceVec::from_slice(&[2.0])).unwrap();
        let mut sim = SimState::new(&dag, &spec).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(1))).unwrap();
        sim.apply(&dag, Action::Process).unwrap(); // t=2: task 0 done
        assert_eq!(sim.clock(), 2);
        assert_eq!(sim.completed(), 1);
        sim.apply(&dag, Action::Process).unwrap(); // t=3: task 1 done
        assert_eq!(sim.makespan(), Some(3));
    }

    #[test]
    fn dependencies_gate_readiness() {
        let dag = chain();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        assert_eq!(
            sim.apply(&dag, Action::Schedule(TaskId::new(1)))
                .unwrap_err(),
            ClusterError::TaskNotReady(TaskId::new(1))
        );
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        sim.apply(&dag, Action::Process).unwrap();
        assert_eq!(sim.ready(), &[TaskId::new(1)]);
    }

    #[test]
    fn process_requires_running_tasks() {
        let dag = chain();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        assert_eq!(
            sim.apply(&dag, Action::Process).unwrap_err(),
            ClusterError::NothingRunning
        );
    }

    #[test]
    fn legal_actions_filtering() {
        let dag = two_independent();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        // Initially: both tasks schedulable, no Process (empty cluster).
        let a0 = sim.legal_actions(&dag);
        assert_eq!(a0.len(), 2);
        assert!(!a0.contains(&Action::Process));
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        // Now: task 1 does not fit; only Process remains.
        assert_eq!(sim.legal_actions(&dag), vec![Action::Process]);
    }

    #[test]
    fn terminal_state_rejects_actions() {
        let dag = chain();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        let ms = sim.run_with(&dag, |_, actions| actions[0]).unwrap();
        assert_eq!(ms, 5);
        assert!(sim.is_terminal(&dag));
        assert_eq!(
            sim.apply(&dag, Action::Process).unwrap_err(),
            ClusterError::SimulationFinished
        );
    }

    #[test]
    fn process_retires_simultaneous_finishers_together() {
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.3])));
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.3])));
        let dag = b.build().unwrap();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(1))).unwrap();
        sim.apply(&dag, Action::Process).unwrap();
        assert_eq!(sim.completed(), 2);
        assert!(sim.is_terminal(&dag));
        assert_eq!(sim.makespan(), Some(2));
    }

    #[test]
    fn free_capacity_is_restored_after_completion() {
        let dag = two_independent();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        assert!((sim.free()[0] - 0.4).abs() < 1e-9);
        sim.apply(&dag, Action::Process).unwrap();
        assert!((sim.free()[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_epsilon_admissions_do_not_inflate_free_capacity() {
        // Each task demands slightly more than the full capacity — legal,
        // because feasibility tolerates FIT_EPSILON. The derived `free`
        // view saturates at zero while the task runs and must return to
        // exactly the capacity once it completes; the pre-fix sequential
        // bookkeeping instead drifted `free` up by one epsilon per cycle.
        let over = 1.0 + 0.9 * FIT_EPSILON;
        let cycles = 64;
        let mut b = DagBuilder::new(1);
        for _ in 0..cycles {
            b.add_task(Task::new(1, ResourceVec::from_slice(&[over])));
        }
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(1);
        let mut sim = SimState::new(&dag, &spec).unwrap();
        for i in 0..cycles {
            sim.apply(&dag, Action::Schedule(TaskId::new(i))).unwrap();
            sim.apply(&dag, Action::Process).unwrap();
            // The clamp makes this exact (not merely within FIT_EPSILON):
            // an idle cluster reports precisely its capacity as free.
            assert!(
                sim.free()[0] <= spec.capacity()[0],
                "free capacity drifted to {} after {} schedule/process cycles",
                sim.free()[0],
                i + 1
            );
        }
        assert!(sim.is_terminal(&dag));
        // With the clamp, free is restored to exactly the capacity.
        assert_eq!(sim.free()[0], spec.capacity()[0]);
    }

    #[test]
    fn epsilon_debt_does_not_survive_partial_completions() {
        // The bug the differential fuzzer caught: with the old
        // `demand <= free + FIT_EPSILON` admission rule, the saturating
        // subtraction forgot how far an epsilon-admission had overshot, so
        // after a *partial* completion the restored `free` overstated the
        // true residual and a further epsilon-admission could push the
        // concurrent usage past `capacity + FIT_EPSILON` — a schedule that
        // `Schedule::validate` and the `ResourceTimeline` then rejected.
        // Sum-based admission keeps one shared epsilon for the whole
        // running set.
        let eps = FIT_EPSILON;
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5 + 0.6 * eps])));
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5 + 0.2 * eps])));
        b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5 + 0.9 * eps])));
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(1);
        let mut sim = SimState::new(&dag, &spec).unwrap();
        // Both first tasks fit together: 1.0 + 0.8e-9 <= 1.0 + 1e-9.
        sim.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        sim.apply(&dag, Action::Schedule(TaskId::new(1))).unwrap();
        sim.apply(&dag, Action::Process).unwrap(); // t=1: task 0 done
        assert_eq!(sim.clock(), 1);
        // Task 2 with the still-running task 1 would use 1.0 + 1.1e-9 —
        // past the shared epsilon. The old rule admitted it here.
        assert!(!sim.can_schedule(&dag, TaskId::new(2)));
        assert_eq!(
            sim.apply(&dag, Action::Schedule(TaskId::new(2)))
                .unwrap_err(),
            ClusterError::InsufficientResources(TaskId::new(2))
        );
        sim.apply(&dag, Action::Process).unwrap(); // t=2: task 1 done
        sim.apply(&dag, Action::Schedule(TaskId::new(2))).unwrap();
        sim.apply(&dag, Action::Process).unwrap();
        assert_eq!(sim.makespan(), Some(3));
        sim.into_schedule(&dag).validate(&dag, &spec).unwrap();
    }

    #[test]
    fn admission_is_independent_of_schedule_order() {
        // Sum-based admission must not care which same-clock task was
        // admitted first — the differential replay normalizes to task-id
        // order, and the old free-based rule could disagree with the
        // episode's own order near the epsilon boundary.
        let eps = FIT_EPSILON;
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5 + 0.6 * eps])));
        b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5 + 0.2 * eps])));
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(1);
        for order in [[0usize, 1], [1, 0]] {
            let mut sim = SimState::new(&dag, &spec).unwrap();
            for i in order {
                sim.apply(&dag, Action::Schedule(TaskId::new(i))).unwrap();
            }
            sim.apply(&dag, Action::Process).unwrap();
            assert_eq!(sim.makespan(), Some(1), "order {order:?}");
        }
    }

    #[test]
    fn into_schedule_produces_valid_schedule() {
        let dag = chain();
        let spec = ClusterSpec::unit(1);
        let mut sim = SimState::new(&dag, &spec).unwrap();
        sim.run_with(&dag, |_, actions| actions[0]).unwrap();
        let schedule = sim.into_schedule(&dag);
        assert_eq!(schedule.makespan(), 5);
        schedule.validate(&dag, &spec).unwrap();
    }

    #[test]
    #[should_panic(expected = "unfinished simulation")]
    fn into_schedule_panics_when_unfinished() {
        let dag = chain();
        let sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        let _ = sim.into_schedule(&dag);
    }

    #[test]
    fn fingerprint_stays_in_sync_with_recomputation() {
        let dag = two_independent();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        let check = |sim: &SimState| {
            assert_eq!(
                sim.recompute_placement_hash(),
                sim.placement_hash,
                "incremental placement hash drifted from recomputation"
            );
        };
        check(&sim);
        while !sim.is_terminal(&dag) {
            let actions = sim.legal_actions(&dag);
            sim.apply(&dag, actions[0]).unwrap();
            check(&sim);
        }
    }

    #[test]
    fn fingerprint_tracks_running_order() {
        // Two same-shape tasks admitted in opposite orders reach states
        // that are logically equivalent as *sets* but featurize
        // differently (the occupancy image follows vector order), so
        // their fingerprints must differ — and each must still agree
        // with the from-scratch placement recomputation.
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.3])));
        b.add_task(Task::new(3, ResourceVec::from_slice(&[0.3])));
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(1);
        let fp = |order: [usize; 2]| {
            let mut sim = SimState::new(&dag, &spec).unwrap();
            for i in order {
                sim.apply(&dag, Action::Schedule(TaskId::new(i))).unwrap();
            }
            assert_eq!(sim.recompute_placement_hash(), sim.placement_hash);
            sim.fingerprint()
        };
        assert_ne!(fp([0, 1]), fp([1, 0]));
    }

    #[test]
    fn frontier_fingerprint_ignores_finished_history() {
        // Four independent tasks with dyadic demands: E and A (runtime 1),
        // B (runtime 2), C (never scheduled). Two histories:
        //   P1: E@0 and A@0 co-run, process (both finish), B@1
        //   P2: E@0, process, A@1, process, B@2
        // Both arrive at the same frontier — ready {C}, running [(B,
        // rel-finish 2)], 2 completed, identical `used` bits (dyadic
        // arithmetic is exact) — but with different placements and
        // clocks. The frontier fingerprints must agree while the full
        // fingerprints differ.
        let mut b = DagBuilder::new(1);
        let e = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5])));
        let a = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5])));
        let t_b = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
        let _c = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5])));
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(1);
        let run = |actions: &[Action]| {
            let mut sim = SimState::new(&dag, &spec).unwrap();
            for &action in actions {
                sim.apply(&dag, action).unwrap();
            }
            sim
        };
        let p1 = run(&[
            Action::Schedule(e),
            Action::Schedule(a),
            Action::Process,
            Action::Schedule(t_b),
        ]);
        let p2 = run(&[
            Action::Schedule(e),
            Action::Process,
            Action::Schedule(a),
            Action::Process,
            Action::Schedule(t_b),
        ]);
        assert_eq!(p1.ready(), p2.ready());
        assert_eq!(p1.completed(), p2.completed());
        assert_ne!(p1.clock(), p2.clock());
        assert_eq!(
            p1.frontier_fingerprint(),
            p2.frontier_fingerprint(),
            "same frontier must share a frontier fingerprint"
        );
        assert_ne!(
            p1.fingerprint(),
            p2.fingerprint(),
            "different histories must keep distinct full fingerprints"
        );
        // And a genuinely different frontier must not collide.
        let p3 = run(&[Action::Schedule(e), Action::Schedule(t_b)]);
        assert_ne!(p1.frontier_fingerprint(), p3.frontier_fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_states_and_clones_preserve_it() {
        let dag = two_independent();
        let sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        let initial = sim.fingerprint();
        let mut a = sim.clone();
        assert_eq!(a.fingerprint(), initial);
        a.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        assert_ne!(a.fingerprint(), initial);
        let mut b = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        b.clone_from(&a);
        assert_eq!(b.fingerprint(), a.fingerprint());
    }

    #[test]
    fn run_with_always_offers_nonempty_actions() {
        let dag = chain();
        let mut sim = SimState::new(&dag, &ClusterSpec::unit(1)).unwrap();
        sim.run_with(&dag, |_, actions| {
            assert!(!actions.is_empty());
            actions[0]
        })
        .unwrap();
    }
}
