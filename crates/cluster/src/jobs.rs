//! Multi-job arrival queues and per-job completion-time accounting.
//!
//! A [`JobQueue`] freezes a stream of `(arrival_time, DAG)` pairs into one
//! *union DAG* — every job's tasks concatenated with shifted ids, no edges
//! between jobs — plus the arrival metadata the simulator needs to gate
//! each job's sources until its arrival time. The union view is what lets
//! the whole scheduler stack run unchanged: the frontier of a multi-job
//! [`SimState`] is simply the union of the per-job
//! frontiers of the *arrived* jobs, so `legal_actions_into`/`apply_legal`
//! and everything above them (baselines, MCTS, the DRL featurizer) operate
//! on one DAG exactly as in the single-job regime.
//!
//! Scoring changes with the regime: a shared cluster is judged on *job
//! completion time* (JCT), not one makespan. [`JctReport`] carries per-job
//! arrival/finish/JCT rows plus the aggregate statistics the paper's
//! comparison points (Decima, Graphene — see PAPERS.md) report: mean, p50
//! and p99 JCT, and an unfairness measure defined as the spread
//! `max − min` of per-job *slowdowns* (JCT divided by the job's
//! zero-contention lower bound, its critical-path length).

use serde::{Deserialize, Serialize};
use spear_dag::{Dag, DagBuilder, DagError, TaskId};

use crate::{Placement, Schedule, SimState, SpearError};

/// One job's task range inside the union DAG, plus its arrival metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpan {
    /// Queue index of the job (jobs are sorted by arrival time).
    pub job: usize,
    /// Time slot at which the job becomes schedulable.
    pub arrival: u64,
    /// Index of the job's first task in the union DAG.
    pub first_task: usize,
    /// Number of tasks in the job.
    pub tasks: usize,
    /// The job's critical-path length — its JCT lower bound on an
    /// unloaded cluster, and the denominator of its slowdown.
    pub ideal: u64,
}

/// A frozen stream of jobs arriving at a shared cluster.
///
/// Construction sorts the jobs by arrival time (ties keep submission
/// order), concatenates their DAGs into one union DAG with disjoint id
/// ranges, and records per-job [`JobSpan`]s. The queue is immutable: the
/// *simulation-time* arrival bookkeeping (which jobs have been injected)
/// lives in [`SimState`], so search-tree clones stay cheap.
///
/// ```
/// use spear_dag::{DagBuilder, ResourceVec, Task};
/// use spear_cluster::JobQueue;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let job = || {
///     let mut b = DagBuilder::new(1);
///     b.add_task(Task::new(2, ResourceVec::from_slice(&[0.4])));
///     b.build()
/// };
/// let queue = JobQueue::new(vec![(0, job()?), (5, job()?)])?;
/// assert_eq!(queue.jobs(), 2);
/// assert_eq!(queue.union_dag().len(), 2);
/// assert_eq!(queue.span(1).arrival, 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobQueue {
    union: Dag,
    spans: Vec<JobSpan>,
    /// The original per-job DAGs (arrival order), for per-job validation.
    job_dags: Vec<Dag>,
}

impl JobQueue {
    /// Freezes `jobs` into an arrival-sorted queue over one union DAG.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::Empty`] (as [`SpearError::Dag`]) for an empty
    /// job list and [`DagError::DimensionMismatch`] if the jobs disagree
    /// on resource dimensionality.
    pub fn new(mut jobs: Vec<(u64, Dag)>) -> Result<Self, SpearError> {
        if jobs.is_empty() {
            return Err(DagError::Empty.into());
        }
        jobs.sort_by_key(|&(arrival, _)| arrival);
        let dims = jobs[0].1.dims();
        let mut builder = DagBuilder::new(dims);
        let mut spans = Vec::with_capacity(jobs.len());
        let mut offset = 0usize;
        for (job, (arrival, dag)) in jobs.iter().enumerate() {
            for task in dag.tasks() {
                builder.add_task(task.clone());
            }
            for edge in dag.edges() {
                let from = TaskId::new(offset + edge.from.index());
                let to = TaskId::new(offset + edge.to.index());
                builder
                    .add_edge(from, to)
                    .expect("per-job edges are valid and id-shifted disjointly");
            }
            spans.push(JobSpan {
                job,
                arrival: *arrival,
                first_task: offset,
                tasks: dag.len(),
                ideal: dag.critical_path_length(),
            });
            offset += dag.len();
        }
        let union = builder.build()?;
        Ok(JobQueue {
            union,
            spans,
            job_dags: jobs.into_iter().map(|(_, dag)| dag).collect(),
        })
    }

    /// Wraps a single already-built DAG as a one-job queue arriving at
    /// time 0 — the degenerate stream whose episode is action-for-action
    /// identical to the single-job simulator.
    pub fn single(dag: Dag) -> Result<Self, SpearError> {
        JobQueue::new(vec![(0, dag)])
    }

    /// Number of jobs in the queue.
    pub fn jobs(&self) -> usize {
        self.spans.len()
    }

    /// The union DAG every scheduler operates on.
    pub fn union_dag(&self) -> &Dag {
        &self.union
    }

    /// The per-job spans, sorted by arrival time.
    pub fn spans(&self) -> &[JobSpan] {
        &self.spans
    }

    /// The span of job `job` (queue order).
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    pub fn span(&self, job: usize) -> &JobSpan {
        &self.spans[job]
    }

    /// The original DAG of job `job` (queue order).
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    pub fn job_dag(&self, job: usize) -> &Dag {
        &self.job_dags[job]
    }

    /// The job a union-DAG task belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range for the union DAG.
    pub fn job_of(&self, task: TaskId) -> usize {
        assert!(task.index() < self.union.len(), "task out of range");
        self.spans.partition_point(|s| s.first_task <= task.index()) - 1
    }

    /// Splits a union-DAG schedule into per-job schedules with job-local
    /// task ids and *absolute* start times (so cross-job contention gaps
    /// are visible). Each per-job schedule's makespan is the finish time
    /// of that job's last task.
    ///
    /// # Panics
    ///
    /// Panics if `schedule` is missing a placement for some task — split
    /// complete (terminal) schedules only.
    pub fn per_job_schedules(&self, schedule: &Schedule) -> Vec<Schedule> {
        self.spans
            .iter()
            .map(|span| {
                let mut placements = Vec::with_capacity(span.tasks);
                let mut makespan = 0;
                for local in 0..span.tasks {
                    let p = schedule
                        .placement_of(TaskId::new(span.first_task + local))
                        .expect("complete schedule places every union task");
                    makespan = makespan.max(p.finish);
                    placements.push(Placement {
                        task: TaskId::new(local),
                        start: p.start,
                        finish: p.finish,
                        machine: p.machine,
                    });
                }
                Schedule::from_placements(placements, makespan)
            })
            .collect()
    }

    /// Per-job completion-time report of a complete union schedule.
    pub fn jct_report(&self, schedule: &Schedule) -> JctReport {
        self.report_from_finishes(None, |task| schedule.placement_of(task).map(|p| p.finish))
    }

    /// Per-job completion-time report of a (possibly horizon-truncated)
    /// simulation state. A job counts as completed once all of its tasks
    /// are *scheduled* — their finish times are then determined even if
    /// the clock has not yet reached them; jobs with unscheduled tasks are
    /// tallied as `unfinished` and contribute a clock-censored slowdown
    /// lower bound to [`JctReport::unfairness`]. Under fault injection a
    /// task's finish accounts for its straggler-stretched occupancy, and
    /// failed (retracted) attempts leave the task unscheduled again.
    pub fn jct_report_partial(&self, state: &SimState) -> JctReport {
        self.report_from_finishes(Some(state.clock()), |task| {
            state
                .start_of(task)
                .map(|start| start + state.run_slots_of(&self.union, task))
        })
    }

    /// `censor` is the observation clock of a truncated episode: each
    /// unfinished job contributes the slowdown lower bound
    /// `max(ideal, censor − arrival) / ideal` (it has provably waited that
    /// long). `None` (complete-schedule reports) falls back to the neutral
    /// bound `1.0`.
    fn report_from_finishes<F: Fn(TaskId) -> Option<u64>>(
        &self,
        censor: Option<u64>,
        finish_of: F,
    ) -> JctReport {
        let mut completions = Vec::with_capacity(self.spans.len());
        let mut unfinished = 0usize;
        let mut censored_slowdowns = Vec::new();
        for span in &self.spans {
            let mut finish = 0u64;
            let mut complete = true;
            for local in 0..span.tasks {
                let task = TaskId::new(span.first_task + local);
                match finish_of(task) {
                    Some(end) => finish = finish.max(end),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            let ideal = span.ideal.max(1);
            if !complete {
                unfinished += 1;
                let lower = match censor {
                    Some(clock) => ideal.max(clock.saturating_sub(span.arrival)),
                    None => ideal,
                };
                censored_slowdowns.push(lower as f64 / ideal as f64);
                continue;
            }
            let jct = finish - span.arrival;
            completions.push(JobCompletion {
                job: span.job,
                arrival: span.arrival,
                finish,
                jct,
                slowdown: jct as f64 / ideal as f64,
            });
        }
        JctReport {
            completions,
            unfinished,
            censored_slowdowns,
        }
    }
}

/// One completed job's timing in a [`JctReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobCompletion {
    /// Queue index of the job.
    pub job: usize,
    /// Arrival time slot.
    pub arrival: u64,
    /// Finish time of the job's last task.
    pub finish: u64,
    /// Job completion time: `finish - arrival`.
    pub jct: u64,
    /// `jct` divided by the job's critical-path length — 1.0 is the
    /// zero-contention optimum for a sufficiently wide cluster.
    pub slowdown: f64,
}

/// Per-job completion-time statistics of a multi-job episode.
///
/// Percentiles use the nearest-rank definition (the smallest recorded JCT
/// with at least `p`% of jobs at or below it), so they are exact recorded
/// values, not interpolations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JctReport {
    completions: Vec<JobCompletion>,
    unfinished: usize,
    /// Slowdown lower bounds of the unfinished jobs (censored at the
    /// observation clock), parallel to nothing — one entry per unfinished
    /// job, in queue order.
    #[serde(default)]
    censored_slowdowns: Vec<f64>,
}

impl JctReport {
    /// Per-job rows, in queue (arrival) order.
    pub fn completions(&self) -> &[JobCompletion] {
        &self.completions
    }

    /// Jobs whose tasks were not all scheduled (non-zero only for
    /// horizon-truncated episodes).
    pub fn unfinished(&self) -> usize {
        self.unfinished
    }

    /// Censored slowdown lower bounds of the unfinished jobs (queue
    /// order): each has provably waited `clock − arrival` slots already,
    /// so its eventual slowdown is at least that over its ideal.
    pub fn censored_slowdowns(&self) -> &[f64] {
        &self.censored_slowdowns
    }

    /// Mean JCT over completed jobs; `None` if no job completed (a
    /// horizon-truncated run where nothing finished has no JCT sample, not
    /// a perfect one).
    pub fn mean_jct(&self) -> Option<f64> {
        if self.completions.is_empty() {
            return None;
        }
        let total: u64 = self.completions.iter().map(|c| c.jct).sum();
        Some(total as f64 / self.completions.len() as f64)
    }

    /// Nearest-rank percentile of the JCT distribution; `p` must lie in
    /// `(0, 100]` (debug-asserted). `None` if no job completed.
    pub fn percentile_jct(&self, p: f64) -> Option<u64> {
        debug_assert!(
            p > 0.0 && p <= 100.0,
            "percentile {p} outside the nearest-rank domain (0, 100]"
        );
        if self.completions.is_empty() {
            return None;
        }
        let mut jcts: Vec<u64> = self.completions.iter().map(|c| c.jct).collect();
        jcts.sort_unstable();
        let rank = ((p / 100.0) * jcts.len() as f64).ceil() as usize;
        Some(jcts[rank.clamp(1, jcts.len()) - 1])
    }

    /// Median (p50, nearest-rank) JCT; `None` if no job completed.
    pub fn p50_jct(&self) -> Option<u64> {
        self.percentile_jct(50.0)
    }

    /// Tail (p99, nearest-rank) JCT; `None` if no job completed.
    pub fn p99_jct(&self) -> Option<u64> {
        self.percentile_jct(99.0)
    }

    /// Unfairness: the spread `max − min` of per-job slowdowns, folding in
    /// the censored lower bounds of unfinished jobs (a scheduler that
    /// starves a job under a horizon must not look *fairer* for it). Zero
    /// when fewer than two jobs contribute — and for a perfectly fair
    /// scheduler, however loaded the cluster.
    pub fn unfairness(&self) -> f64 {
        let points = self
            .completions
            .iter()
            .map(|c| c.slowdown)
            .chain(self.censored_slowdowns.iter().copied());
        let mut count = 0usize;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for s in points {
            count += 1;
            min = min.min(s);
            max = max.max(s);
        }
        if count < 2 {
            return 0.0;
        }
        max - min
    }

    /// Finish time of the last completed job (0 if none).
    pub fn last_finish(&self) -> u64 {
        self.completions.iter().map(|c| c.finish).max().unwrap_or(0)
    }
}

/// Simulation-time arrival bookkeeping of a multi-job episode, embedded in
/// [`SimState`] (absent — `None` — in the single-job regime, which keeps
/// that regime bit-identical to the pre-multi-job simulator).
///
/// Only [`MultiJob::next_arrival`], the per-job completion counts and
/// `jobs_done` mutate during an episode; the arrival/bound tables are
/// per-episode constants, cloned (and reused via `clone_from`) with the
/// state so search-tree snapshots need no back-reference to the queue.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub(crate) struct MultiJob {
    /// Arrival slot per job, non-decreasing (queue order).
    pub(crate) arrivals: Vec<u64>,
    /// Union-task index at which each job's block starts, plus a final
    /// sentinel equal to the union task count.
    pub(crate) bounds: Vec<u32>,
    /// Jobs injected into the frontier so far (a prefix of `arrivals`).
    pub(crate) next_arrival: usize,
    /// Completed-task count per job.
    pub(crate) completed: Vec<u32>,
    /// Jobs whose every task has completed.
    pub(crate) jobs_done: usize,
}

// Manual `Clone` so `clone_from` reuses the interior vectors — the MCTS
// rollout scratch clones one state (including this) per rollout.
impl Clone for MultiJob {
    fn clone(&self) -> Self {
        MultiJob {
            arrivals: self.arrivals.clone(),
            bounds: self.bounds.clone(),
            next_arrival: self.next_arrival,
            completed: self.completed.clone(),
            jobs_done: self.jobs_done,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.arrivals.clone_from(&source.arrivals);
        self.bounds.clone_from(&source.bounds);
        self.next_arrival = source.next_arrival;
        self.completed.clone_from(&source.completed);
        self.jobs_done = source.jobs_done;
    }
}

impl MultiJob {
    /// Builds the initial bookkeeping for `queue`: nothing injected yet
    /// (the constructor of the state injects time-0 arrivals itself).
    pub(crate) fn new(queue: &JobQueue) -> Self {
        let mut bounds: Vec<u32> = queue.spans().iter().map(|s| s.first_task as u32).collect();
        bounds.push(queue.union_dag().len() as u32);
        MultiJob {
            arrivals: queue.spans().iter().map(|s| s.arrival).collect(),
            bounds,
            next_arrival: 0,
            completed: vec![0; queue.jobs()],
            jobs_done: 0,
        }
    }

    /// Number of jobs in the stream.
    #[inline]
    pub(crate) fn jobs(&self) -> usize {
        self.arrivals.len()
    }

    /// The job owning union-DAG task index `task`.
    #[inline]
    pub(crate) fn job_of(&self, task: usize) -> usize {
        self.bounds.partition_point(|&b| (b as usize) <= task) - 1
    }

    /// The union-task index range of job `job`.
    #[inline]
    pub(crate) fn job_range(&self, job: usize) -> std::ops::Range<usize> {
        self.bounds[job] as usize..self.bounds[job + 1] as usize
    }

    /// Arrival time of the next not-yet-injected job, if any.
    #[inline]
    pub(crate) fn next_arrival_time(&self) -> Option<u64> {
        self.arrivals.get(self.next_arrival).copied()
    }

    /// Jobs whose arrival the clock has not reached yet.
    #[inline]
    pub(crate) fn pending_jobs(&self) -> usize {
        self.arrivals.len() - self.next_arrival
    }

    /// Arrived jobs that have not completed all their tasks.
    #[inline]
    pub(crate) fn jobs_in_flight(&self) -> usize {
        self.next_arrival - self.jobs_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_dag::{ResourceVec, Task};

    fn chain(runtimes: &[u64]) -> Dag {
        let mut b = DagBuilder::new(1);
        let ids: Vec<TaskId> = runtimes
            .iter()
            .map(|&r| b.add_task(Task::new(r, ResourceVec::from_slice(&[0.5]))))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn queue_sorts_by_arrival_and_shifts_ids() {
        let queue = JobQueue::new(vec![(7, chain(&[1, 1])), (2, chain(&[3]))]).unwrap();
        assert_eq!(queue.jobs(), 2);
        // Job order follows arrivals: the 3-slot chain first.
        assert_eq!(queue.span(0).arrival, 2);
        assert_eq!(queue.span(0).tasks, 1);
        assert_eq!(queue.span(1).arrival, 7);
        assert_eq!(queue.span(1).first_task, 1);
        let union = queue.union_dag();
        assert_eq!(union.len(), 3);
        // The second job's internal edge was shifted past the first job.
        assert_eq!(union.edges().len(), 1);
        assert_eq!(union.edges()[0].from, TaskId::new(1));
        assert_eq!(union.edges()[0].to, TaskId::new(2));
        assert_eq!(queue.job_of(TaskId::new(0)), 0);
        assert_eq!(queue.job_of(TaskId::new(2)), 1);
    }

    #[test]
    fn empty_queue_is_an_error() {
        assert!(JobQueue::new(Vec::new()).is_err());
    }

    #[test]
    fn ideal_is_the_critical_path() {
        let queue = JobQueue::new(vec![(0, chain(&[2, 3]))]).unwrap();
        assert_eq!(queue.span(0).ideal, 5);
    }

    #[test]
    fn jct_report_from_schedule() {
        // Job 0 (arrival 0): one 2-slot task at t=0 → JCT 2, slowdown 1.
        // Job 1 (arrival 3): one 2-slot task at t=5 → JCT 4, slowdown 2.
        let queue = JobQueue::new(vec![(0, chain(&[2])), (3, chain(&[2]))]).unwrap();
        let schedule = Schedule::from_placements(
            vec![
                Placement::new(TaskId::new(0), 0, 2),
                Placement::new(TaskId::new(1), 5, 7),
            ],
            7,
        );
        let report = queue.jct_report(&schedule);
        assert_eq!(report.unfinished(), 0);
        assert_eq!(report.completions().len(), 2);
        assert_eq!(report.completions()[0].jct, 2);
        assert_eq!(report.completions()[1].jct, 4);
        assert!((report.mean_jct().unwrap() - 3.0).abs() < 1e-12);
        assert_eq!(report.p50_jct(), Some(2));
        assert_eq!(report.p99_jct(), Some(4));
        assert!((report.unfairness() - 1.0).abs() < 1e-12);
        assert_eq!(report.last_finish(), 7);

        let per_job = queue.per_job_schedules(&schedule);
        assert_eq!(per_job.len(), 2);
        assert_eq!(per_job[1].placements()[0].task, TaskId::new(0));
        assert_eq!(per_job[1].placements()[0].start, 5);
        assert_eq!(per_job[1].makespan(), 7);
    }

    #[test]
    fn empty_report_statistics_are_absent_not_zero() {
        let report = JctReport {
            completions: Vec::new(),
            unfinished: 3,
            censored_slowdowns: vec![1.0, 2.5, 4.0],
        };
        assert_eq!(report.mean_jct(), None);
        assert_eq!(report.p50_jct(), None);
        assert_eq!(report.p99_jct(), None);
        // Censored bounds still witness unfairness among the starved jobs.
        assert!((report.unfairness() - 3.0).abs() < 1e-12);
        assert_eq!(report.last_finish(), 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "outside the nearest-rank domain")]
    fn percentile_domain_is_debug_asserted() {
        let queue = JobQueue::new(vec![(0, chain(&[2]))]).unwrap();
        let schedule = Schedule::from_placements(vec![Placement::new(TaskId::new(0), 0, 2)], 2);
        let _ = queue.jct_report(&schedule).percentile_jct(0.0);
    }

    /// A report built from `jcts` in queue order.
    fn report_of(jcts: &[u64]) -> JctReport {
        JctReport {
            completions: jcts
                .iter()
                .enumerate()
                .map(|(job, &jct)| JobCompletion {
                    job,
                    arrival: 0,
                    finish: jct,
                    jct,
                    slowdown: 1.0,
                })
                .collect(),
            unfinished: 0,
            censored_slowdowns: Vec::new(),
        }
    }

    #[test]
    fn every_percentile_of_a_single_job_is_that_job() {
        // n = 1: rank = ceil(p/100) = 1 for every admissible p, and the
        // clamp must not push the rank out of the one-element array.
        let report = report_of(&[17]);
        for p in [0.01, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(report.percentile_jct(p), Some(17), "p = {p}");
        }
    }

    #[test]
    fn all_equal_jcts_collapse_every_percentile() {
        // Ties: whatever rank nearest-rank lands on, the value is the
        // same — no percentile may invent a different number.
        let report = report_of(&[8, 8, 8, 8, 8]);
        for p in [0.01, 25.0, 50.0, 75.0, 99.0, 100.0] {
            assert_eq!(report.percentile_jct(p), Some(8), "p = {p}");
        }
        assert_eq!(report.mean_jct(), Some(8.0));
    }

    #[test]
    fn nearest_rank_p99_of_twenty_jobs_is_the_max() {
        // Nearest-rank property: for n = 20, rank(99%) = ceil(19.8) = 20,
        // so p99 must be the maximum recorded JCT — exactly, for any
        // distribution of values.
        let mut jcts = [
            3u64, 91, 14, 7, 7, 250, 1, 42, 42, 9, 88, 5, 63, 2, 17, 30, 11, 4, 6, 19,
        ];
        let report = JctReport {
            completions: jcts
                .iter()
                .enumerate()
                .map(|(job, &jct)| JobCompletion {
                    job,
                    arrival: 0,
                    finish: jct,
                    jct,
                    slowdown: 1.0,
                })
                .collect(),
            unfinished: 0,
            censored_slowdowns: Vec::new(),
        };
        jcts.sort_unstable();
        assert_eq!(report.p99_jct(), Some(jcts[19]));
        assert_eq!(report.percentile_jct(100.0), Some(jcts[19]));
        assert_eq!(report.percentile_jct(95.0), Some(jcts[18]));
        // Smallest admissible percentile maps to the minimum.
        assert_eq!(report.percentile_jct(0.01), Some(jcts[0]));
        // Nearest-rank percentiles are monotone in p.
        let mut prev = 0;
        for p in 1..=100 {
            let v = report.percentile_jct(p as f64).unwrap();
            assert!(v >= prev, "percentile dipped at p={p}");
            prev = v;
        }
    }

    #[test]
    fn starvation_increases_unfairness() {
        use crate::{Action, ClusterSpec, SimState};
        use spear_dag::ResourceVec;

        // Two identical one-task jobs, a cluster that fits only one at a
        // time. Run job 0 to completion and leave job 1 starved while the
        // clock sits at t=8 (job 0's task re-run horizon); the censored
        // bound for job 1 is (8 − 0)/2 = 4.0 against job 0's slowdown 1.0.
        let queue = JobQueue::new(vec![(0, chain(&[2, 2, 2, 2])), (0, chain(&[2]))]).unwrap();
        let spec = ClusterSpec::new(ResourceVec::from_slice(&[0.75])).unwrap();
        let mut sim = SimState::new_multi(&queue, &spec).unwrap();
        for local in 0..4 {
            sim.apply(queue.union_dag(), Action::Schedule(TaskId::new(local)))
                .unwrap();
            sim.apply(queue.union_dag(), Action::Process).unwrap();
        }
        assert_eq!(sim.clock(), 8);
        let report = queue.jct_report_partial(&sim);
        assert_eq!(report.unfinished(), 1);
        // Job 0: jct 8 over ideal 8 → slowdown 1.0. Job 1: censored at
        // clock 8 over ideal 2 → lower bound 4.0.
        assert_eq!(report.censored_slowdowns(), &[4.0]);
        assert!((report.unfairness() - 3.0).abs() < 1e-12);
        // The pre-fix accounting (completed jobs only) would have reported
        // a single-point spread of 0.0 — starvation made the run look
        // perfectly fair.
        assert_eq!(report.completions().len(), 1);
    }

    #[test]
    fn multi_job_bookkeeping_maps_tasks_to_jobs() {
        let queue = JobQueue::new(vec![(0, chain(&[1, 1])), (4, chain(&[2]))]).unwrap();
        let multi = MultiJob::new(&queue);
        assert_eq!(multi.jobs(), 2);
        assert_eq!(multi.job_of(0), 0);
        assert_eq!(multi.job_of(1), 0);
        assert_eq!(multi.job_of(2), 1);
        assert_eq!(multi.job_range(0), 0..2);
        assert_eq!(multi.job_range(1), 2..3);
        assert_eq!(multi.next_arrival_time(), Some(0));
        assert_eq!(multi.pending_jobs(), 2);
        assert_eq!(multi.jobs_in_flight(), 0);
    }
}
