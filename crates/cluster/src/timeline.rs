//! The resource-time occupancy grid.
//!
//! [`ResourceTimeline`] is the "array of rectangles" view of the cluster
//! (paper §III-B): per time slot, the summed demand of everything placed in
//! that slot. It backs two consumers:
//!
//! * Graphene's **virtual placement** phase, which packs troublesome tasks
//!   into an empty space forward (from time 0 up) or backward (from a
//!   horizon down) while ignoring dependencies, and
//! * the DRL featurizer, which renders the first `H` slots of the *actual*
//!   cluster occupancy as part of the network input.

use serde::{Deserialize, Serialize};
use spear_dag::{ResourceVec, FIT_EPSILON};

/// A growable occupancy grid over time slots for a fixed-capacity cluster.
///
/// ```
/// use spear_dag::ResourceVec;
/// use spear_cluster::ResourceTimeline;
///
/// let mut tl = ResourceTimeline::new(ResourceVec::from_slice(&[1.0]));
/// let d = ResourceVec::from_slice(&[0.6]);
/// assert_eq!(tl.earliest_start(&d, 3, 0), 0);
/// tl.place(&d, 0, 3);
/// // A second 0.6-demand task no longer fits before t=3.
/// assert_eq!(tl.earliest_start(&d, 2, 0), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceTimeline {
    capacity: ResourceVec,
    used: Vec<ResourceVec>,
}

impl ResourceTimeline {
    /// Creates an empty timeline for a cluster with the given capacity.
    pub fn new(capacity: ResourceVec) -> Self {
        ResourceTimeline {
            capacity,
            used: Vec::new(),
        }
    }

    /// Cluster capacity per dimension.
    pub fn capacity(&self) -> &ResourceVec {
        &self.capacity
    }

    /// Number of slots currently materialized (the latest finish of any
    /// placement; slots beyond are implicitly empty).
    pub fn horizon(&self) -> u64 {
        self.used.len() as u64
    }

    /// Occupancy at `slot` (zero beyond the horizon).
    pub fn used_at(&self, slot: u64) -> ResourceVec {
        self.used
            .get(slot as usize)
            .cloned()
            .unwrap_or_else(|| ResourceVec::zeros(self.capacity.dims()))
    }

    /// Free capacity at `slot`.
    pub fn free_at(&self, slot: u64) -> ResourceVec {
        self.capacity.saturating_sub(&self.used_at(slot))
    }

    /// Whether `demand` fits in every slot of `[start, start + duration)`.
    ///
    /// Overflow-safe: an interval that would run past `u64::MAX` on the
    /// time axis does not fit (rather than wrapping or panicking on
    /// `start + duration`). Allocation-free: slots are compared
    /// component-wise in place — this sits inside Graphene's packing loop,
    /// which probes `O(horizon)` candidate starts per task.
    pub fn fits(&self, demand: &ResourceVec, start: u64, duration: u64) -> bool {
        if !demand.fits_within(&self.capacity) {
            return false;
        }
        let Some(end) = start.checked_add(duration) else {
            return false;
        };
        // Slots at or beyond the horizon are empty, so only the
        // materialized prefix needs a per-slot check.
        let end = end.min(self.horizon());
        (start..end).all(|s| {
            let used = self.used[s as usize].as_slice();
            used.iter()
                .zip(demand.as_slice())
                .zip(self.capacity.as_slice())
                .all(|((&u, &d), &c)| u + d <= c + FIT_EPSILON)
        })
    }

    /// The earliest start `>= not_before` at which `demand` fits for
    /// `duration` consecutive slots. Always exists (beyond the horizon the
    /// timeline is empty), provided `demand` fits the total capacity.
    ///
    /// # Panics
    ///
    /// Panics if `demand` exceeds the cluster capacity (it would never
    /// fit), `duration` is zero, or no start at or after `not_before` lets
    /// the task finish by `u64::MAX` (the interval would run off the end of
    /// the time axis).
    pub fn earliest_start(&self, demand: &ResourceVec, duration: u64, not_before: u64) -> u64 {
        assert!(duration > 0, "duration must be positive");
        assert!(
            demand.fits_within(&self.capacity),
            "demand exceeds cluster capacity"
        );
        let last_feasible = u64::MAX - duration;
        let mut t = not_before;
        loop {
            assert!(
                t <= last_feasible,
                "no feasible start before the end of the time axis"
            );
            if self.fits(demand, t, duration) {
                return t;
            }
            t += 1;
            // Beyond the horizon everything is free; the loop terminates.
            debug_assert!(t <= self.horizon().saturating_add(1));
        }
    }

    /// The latest start such that the task *finishes by* `deadline`
    /// (`start + duration <= deadline`) and fits; `None` if no such start
    /// exists. Used by Graphene's backward packing.
    pub fn latest_start(&self, demand: &ResourceVec, duration: u64, deadline: u64) -> Option<u64> {
        if duration == 0 || duration > deadline {
            return None;
        }
        let mut t = deadline - duration;
        loop {
            if self.fits(demand, t, duration) {
                return Some(t);
            }
            if t == 0 {
                return None;
            }
            t -= 1;
        }
    }

    /// Commits `demand` to slots `[start, start + duration)`, growing the
    /// grid as needed. Placement is unchecked — callers decide whether to
    /// respect capacity (Graphene's virtual space never overflows because
    /// it only places at `earliest_start`/`latest_start` results).
    ///
    /// The occupied interval saturates at `u64::MAX` rather than wrapping:
    /// a placement that would run past the end of the time axis is clamped
    /// to end there (adversarial trace inputs used to wrap `start +
    /// duration` in release builds and panic in debug builds).
    pub fn place(&mut self, demand: &ResourceVec, start: u64, duration: u64) {
        let end = start.saturating_add(duration) as usize;
        while self.used.len() < end {
            self.used.push(ResourceVec::zeros(self.capacity.dims()));
        }
        for s in start as usize..end {
            self.used[s].add_assign(demand);
        }
    }

    /// Average utilization of the materialized horizon (1.0 = full).
    pub fn utilization(&self) -> f64 {
        if self.used.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .used
            .iter()
            .map(|u| u.utilization_of(&self.capacity))
            .sum();
        total / self.used.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> ResourceTimeline {
        ResourceTimeline::new(ResourceVec::from_slice(&[1.0, 1.0]))
    }

    #[test]
    fn empty_timeline_is_free_everywhere() {
        let tl = unit();
        assert_eq!(tl.horizon(), 0);
        assert!(tl.fits(&ResourceVec::from_slice(&[1.0, 1.0]), 100, 50));
        assert_eq!(tl.free_at(42).as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn place_and_query() {
        let mut tl = unit();
        tl.place(&ResourceVec::from_slice(&[0.5, 0.25]), 2, 3);
        assert_eq!(tl.horizon(), 5);
        assert_eq!(tl.used_at(1).as_slice(), &[0.0, 0.0]);
        assert_eq!(tl.used_at(2).as_slice(), &[0.5, 0.25]);
        assert_eq!(tl.used_at(4).as_slice(), &[0.5, 0.25]);
        assert_eq!(tl.used_at(5).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn earliest_start_skips_busy_slots() {
        let mut tl = unit();
        tl.place(&ResourceVec::from_slice(&[0.8, 0.1]), 0, 4);
        let d = ResourceVec::from_slice(&[0.5, 0.5]);
        assert_eq!(tl.earliest_start(&d, 2, 0), 4);
        // A small task can share slots with the big one.
        let small = ResourceVec::from_slice(&[0.1, 0.1]);
        assert_eq!(tl.earliest_start(&small, 2, 0), 0);
        // not_before is honoured.
        assert_eq!(tl.earliest_start(&small, 2, 3), 3);
    }

    #[test]
    fn earliest_start_requires_contiguous_fit() {
        let mut tl = unit();
        // Busy at slot 2 only.
        tl.place(&ResourceVec::from_slice(&[0.9, 0.9]), 2, 1);
        let d = ResourceVec::from_slice(&[0.5, 0.5]);
        // Duration 3 cannot straddle slot 2; first fit is 3.
        assert_eq!(tl.earliest_start(&d, 3, 0), 3);
        // Duration 2 fits at 0.
        assert_eq!(tl.earliest_start(&d, 2, 0), 0);
    }

    #[test]
    fn latest_start_packs_from_deadline() {
        let mut tl = unit();
        let d = ResourceVec::from_slice(&[0.6, 0.6]);
        assert_eq!(tl.latest_start(&d, 3, 10), Some(7));
        tl.place(&d, 7, 3);
        // Second task of same demand cannot overlap [7,10): latest is 4.
        assert_eq!(tl.latest_start(&d, 3, 10), Some(4));
    }

    #[test]
    fn latest_start_none_when_impossible() {
        let mut tl = unit();
        tl.place(&ResourceVec::from_slice(&[0.9, 0.9]), 0, 10);
        let d = ResourceVec::from_slice(&[0.5, 0.5]);
        assert_eq!(tl.latest_start(&d, 3, 10), None);
        // Duration longer than deadline.
        assert_eq!(tl.latest_start(&d, 11, 10), None);
        assert_eq!(tl.latest_start(&d, 0, 10), None);
    }

    #[test]
    #[should_panic(expected = "demand exceeds cluster capacity")]
    fn earliest_start_rejects_oversized_demand() {
        let tl = unit();
        tl.earliest_start(&ResourceVec::from_slice(&[1.5, 0.0]), 1, 0);
    }

    #[test]
    fn fits_is_overflow_safe_at_the_end_of_the_time_axis() {
        let tl = unit();
        let d = ResourceVec::from_slice(&[0.5, 0.5]);
        // The interval [u64::MAX, u64::MAX + 1) runs off the time axis.
        assert!(!tl.fits(&d, u64::MAX, 1));
        assert!(!tl.fits(&d, u64::MAX - 5, 6));
        assert!(!tl.fits(&d, 1, u64::MAX));
        // Ending exactly at u64::MAX is still representable.
        assert!(tl.fits(&d, u64::MAX - 5, 5));
        assert!(tl.fits(&d, 0, u64::MAX));
    }

    #[test]
    fn latest_start_is_overflow_safe_at_extreme_deadlines() {
        let tl = unit();
        let d = ResourceVec::from_slice(&[0.5, 0.5]);
        // Backward packing from the largest representable deadline must not
        // wrap when probing `start + duration`.
        assert_eq!(tl.latest_start(&d, 3, u64::MAX), Some(u64::MAX - 3));
        assert_eq!(tl.latest_start(&d, u64::MAX, u64::MAX), Some(0));
    }

    #[test]
    fn earliest_start_succeeds_at_the_last_feasible_slot() {
        let tl = unit();
        let d = ResourceVec::from_slice(&[0.5, 0.5]);
        // Plenty of room when the interval still ends by u64::MAX.
        assert_eq!(tl.earliest_start(&d, 5, u64::MAX - 5), u64::MAX - 5);
    }

    #[test]
    #[should_panic(expected = "no feasible start before the end of the time axis")]
    fn earliest_start_panics_when_no_start_fits_on_the_time_axis() {
        let tl = unit();
        let d = ResourceVec::from_slice(&[0.5, 0.5]);
        tl.earliest_start(&d, 5, u64::MAX - 4);
    }

    #[test]
    fn utilization_accounts_for_horizon() {
        let mut tl = ResourceTimeline::new(ResourceVec::from_slice(&[1.0]));
        tl.place(&ResourceVec::from_slice(&[1.0]), 0, 1);
        tl.place(&ResourceVec::from_slice(&[0.0]), 1, 1); // extends horizon
        assert!((tl.utilization() - 0.5).abs() < 1e-9);
    }
}
