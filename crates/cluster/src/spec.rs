//! Cluster capacity specification.

use serde::{Deserialize, Serialize};
use spear_dag::{Dag, ResourceVec};

use crate::ClusterError;

/// The static description of a cluster: its total capacity per resource
/// dimension.
///
/// The paper's motivating example uses `[1.0, 1.0]` (unit CPU and memory);
/// the DRL training setting uses 20 resource slots. Capacities are
/// arbitrary positive reals here.
///
/// ```
/// use spear_dag::ResourceVec;
/// use spear_cluster::ClusterSpec;
///
/// let spec = ClusterSpec::new(ResourceVec::from_slice(&[1.0, 1.0]))?;
/// assert_eq!(spec.dims(), 2);
/// # Ok::<(), spear_cluster::ClusterError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    capacity: ResourceVec,
}

impl ClusterSpec {
    /// Creates a cluster with the given total capacity.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidCapacity`] if any component is
    /// non-positive or non-finite, or the vector is empty.
    pub fn new(capacity: ResourceVec) -> Result<Self, ClusterError> {
        if capacity.dims() == 0
            || capacity
                .as_slice()
                .iter()
                .any(|&c| !c.is_finite() || c <= 0.0)
        {
            return Err(ClusterError::InvalidCapacity);
        }
        Ok(ClusterSpec { capacity })
    }

    /// A unit-capacity cluster with `dims` dimensions — the motivating
    /// example's setting.
    pub fn unit(dims: usize) -> Self {
        ClusterSpec {
            capacity: ResourceVec::splat(dims.max(1), 1.0),
        }
    }

    /// Total capacity per dimension.
    pub fn capacity(&self) -> &ResourceVec {
        &self.capacity
    }

    /// Number of resource dimensions.
    pub fn dims(&self) -> usize {
        self.capacity.dims()
    }

    /// Checks that `dag` is schedulable on this cluster: matching
    /// dimensionality and every task demand within total capacity.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::DimensionMismatch`] or
    /// [`ClusterError::TaskExceedsCapacity`].
    pub fn validate_dag(&self, dag: &Dag) -> Result<(), ClusterError> {
        if dag.dims() != self.dims() {
            return Err(ClusterError::DimensionMismatch {
                cluster: self.dims(),
                dag: dag.dims(),
            });
        }
        for t in dag.task_ids() {
            if !dag.task(t).demand().fits_within(&self.capacity) {
                return Err(ClusterError::TaskExceedsCapacity(t));
            }
        }
        Ok(())
    }
}

impl Default for ClusterSpec {
    /// Two unit dimensions (CPU + memory), the paper's default setting.
    fn default() -> Self {
        ClusterSpec::unit(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_dag::{DagBuilder, Task, TaskId};

    #[test]
    fn rejects_bad_capacity() {
        assert_eq!(
            ClusterSpec::new(ResourceVec::from_slice(&[0.0])).unwrap_err(),
            ClusterError::InvalidCapacity
        );
        assert_eq!(
            ClusterSpec::new(ResourceVec::from_slice(&[-1.0, 1.0])).unwrap_err(),
            ClusterError::InvalidCapacity
        );
        assert_eq!(
            ClusterSpec::new(ResourceVec::zeros(0)).unwrap_err(),
            ClusterError::InvalidCapacity
        );
        assert_eq!(
            ClusterSpec::new(ResourceVec::from_slice(&[f64::INFINITY])).unwrap_err(),
            ClusterError::InvalidCapacity
        );
    }

    #[test]
    fn unit_and_default() {
        assert_eq!(ClusterSpec::default(), ClusterSpec::unit(2));
        assert_eq!(ClusterSpec::unit(3).capacity().as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn validates_dag_dimensions() {
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5])));
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(2);
        assert_eq!(
            spec.validate_dag(&dag).unwrap_err(),
            ClusterError::DimensionMismatch { cluster: 2, dag: 1 }
        );
    }

    #[test]
    fn validates_oversized_task() {
        let mut b = DagBuilder::new(1);
        let t = b.add_task(Task::new(1, ResourceVec::from_slice(&[1.5])));
        let dag = b.build().unwrap();
        assert_eq!(
            ClusterSpec::unit(1).validate_dag(&dag).unwrap_err(),
            ClusterError::TaskExceedsCapacity(TaskId::new(t.index()))
        );
    }

    #[test]
    fn accepts_feasible_dag() {
        let mut b = DagBuilder::new(2);
        b.add_task(Task::new(1, ResourceVec::from_slice(&[1.0, 0.5])));
        let dag = b.build().unwrap();
        assert!(ClusterSpec::unit(2).validate_dag(&dag).is_ok());
    }
}
