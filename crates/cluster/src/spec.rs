//! Cluster capacity specification.

use serde::{Deserialize, Serialize};
use spear_dag::{Dag, ResourceVec};

use crate::hetero::MachineSet;
use crate::ClusterError;

/// The static description of a cluster: its total capacity per resource
/// dimension, optionally broken down into a heterogeneous
/// [`MachineSet`] with an inter-machine network model.
///
/// The paper's motivating example uses `[1.0, 1.0]` (unit CPU and memory);
/// the DRL training setting uses 20 resource slots. Capacities are
/// arbitrary positive reals here. Without a machine set the cluster is
/// the single homogeneous box every pre-hetero component assumes;
/// [`ClusterSpec::hetero`] attaches machines and keeps `capacity` as
/// their aggregate sum so total-capacity consumers (featurizer globals,
/// lower bounds, utilization) work unchanged.
///
/// ```
/// use spear_dag::ResourceVec;
/// use spear_cluster::ClusterSpec;
///
/// let spec = ClusterSpec::new(ResourceVec::from_slice(&[1.0, 1.0]))?;
/// assert_eq!(spec.dims(), 2);
/// assert_eq!(spec.num_machines(), 1);
/// # Ok::<(), spear_cluster::ClusterError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    capacity: ResourceVec,
    // `None` in the single-box regime; present only for heterogeneous
    // clusters, so pre-hetero serialized specs deserialize unchanged.
    #[serde(default)]
    machines: Option<MachineSet>,
}

impl ClusterSpec {
    /// Creates a cluster with the given total capacity.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidCapacity`] if any component is
    /// non-positive or non-finite, or the vector is empty.
    pub fn new(capacity: ResourceVec) -> Result<Self, ClusterError> {
        if capacity.dims() == 0
            || capacity
                .as_slice()
                .iter()
                .any(|&c| !c.is_finite() || c <= 0.0)
        {
            return Err(ClusterError::InvalidCapacity);
        }
        Ok(ClusterSpec {
            capacity,
            machines: None,
        })
    }

    /// A unit-capacity cluster with `dims` dimensions — the motivating
    /// example's setting.
    pub fn unit(dims: usize) -> Self {
        ClusterSpec {
            capacity: ResourceVec::splat(dims.max(1), 1.0),
            machines: None,
        }
    }

    /// Creates a heterogeneous cluster from a machine set; the aggregate
    /// `capacity` becomes the sum of machine capacities.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterError::InvalidCapacity`] from the aggregate
    /// (cannot actually fail for a set that passed [`MachineSet::new`]).
    pub fn hetero(machines: MachineSet) -> Result<Self, ClusterError> {
        let mut spec = ClusterSpec::new(machines.total_capacity())?;
        spec.machines = Some(machines);
        Ok(spec)
    }

    /// Total capacity per dimension (the machine-capacity sum in the
    /// heterogeneous regime).
    pub fn capacity(&self) -> &ResourceVec {
        &self.capacity
    }

    /// Number of resource dimensions.
    pub fn dims(&self) -> usize {
        self.capacity.dims()
    }

    /// The machine set, if this is a heterogeneous cluster.
    #[inline]
    pub fn machines(&self) -> Option<&MachineSet> {
        self.machines.as_ref()
    }

    /// Number of machines (1 for the single-box regime).
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.machines.as_ref().map_or(1, MachineSet::len)
    }

    /// Checks that `dag` is schedulable on this cluster: matching
    /// dimensionality and every task demand within total capacity — and,
    /// in the heterogeneous regime, within at least one machine's
    /// individual capacity (a task no machine can hold would deadlock
    /// the simulation).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::DimensionMismatch`] or
    /// [`ClusterError::TaskExceedsCapacity`].
    pub fn validate_dag(&self, dag: &Dag) -> Result<(), ClusterError> {
        if dag.dims() != self.dims() {
            return Err(ClusterError::DimensionMismatch {
                cluster: self.dims(),
                dag: dag.dims(),
            });
        }
        for t in dag.task_ids() {
            if !dag.task(t).demand().fits_within(&self.capacity) {
                return Err(ClusterError::TaskExceedsCapacity(t));
            }
            if let Some(machines) = &self.machines {
                let demand = dag.task(t).demand();
                if !machines.capacities().iter().any(|c| demand.fits_within(c)) {
                    return Err(ClusterError::TaskExceedsCapacity(t));
                }
            }
        }
        Ok(())
    }
}

impl Default for ClusterSpec {
    /// Two unit dimensions (CPU + memory), the paper's default setting.
    fn default() -> Self {
        ClusterSpec::unit(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_dag::{DagBuilder, Task, TaskId};

    #[test]
    fn rejects_bad_capacity() {
        assert_eq!(
            ClusterSpec::new(ResourceVec::from_slice(&[0.0])).unwrap_err(),
            ClusterError::InvalidCapacity
        );
        assert_eq!(
            ClusterSpec::new(ResourceVec::from_slice(&[-1.0, 1.0])).unwrap_err(),
            ClusterError::InvalidCapacity
        );
        assert_eq!(
            ClusterSpec::new(ResourceVec::zeros(0)).unwrap_err(),
            ClusterError::InvalidCapacity
        );
        assert_eq!(
            ClusterSpec::new(ResourceVec::from_slice(&[f64::INFINITY])).unwrap_err(),
            ClusterError::InvalidCapacity
        );
    }

    #[test]
    fn unit_and_default() {
        assert_eq!(ClusterSpec::default(), ClusterSpec::unit(2));
        assert_eq!(ClusterSpec::unit(3).capacity().as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn validates_dag_dimensions() {
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5])));
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(2);
        assert_eq!(
            spec.validate_dag(&dag).unwrap_err(),
            ClusterError::DimensionMismatch { cluster: 2, dag: 1 }
        );
    }

    #[test]
    fn validates_oversized_task() {
        let mut b = DagBuilder::new(1);
        let t = b.add_task(Task::new(1, ResourceVec::from_slice(&[1.5])));
        let dag = b.build().unwrap();
        assert_eq!(
            ClusterSpec::unit(1).validate_dag(&dag).unwrap_err(),
            ClusterError::TaskExceedsCapacity(TaskId::new(t.index()))
        );
    }

    #[test]
    fn accepts_feasible_dag() {
        let mut b = DagBuilder::new(2);
        b.add_task(Task::new(1, ResourceVec::from_slice(&[1.0, 0.5])));
        let dag = b.build().unwrap();
        assert!(ClusterSpec::unit(2).validate_dag(&dag).is_ok());
    }

    #[test]
    fn hetero_aggregates_machine_capacities() {
        use crate::TransferMode;
        let machines = MachineSet::new(
            vec![
                ResourceVec::from_slice(&[1.0, 0.5]),
                ResourceVec::from_slice(&[0.5, 0.25]),
            ],
            vec![4, 4, 4, 4],
            TransferMode::Direct,
            7,
            8,
        )
        .unwrap();
        let spec = ClusterSpec::hetero(machines).unwrap();
        assert_eq!(spec.capacity().as_slice(), &[1.5, 0.75]);
        assert_eq!(spec.num_machines(), 2);
        assert!(spec.machines().is_some());
        // Single-box specs report one machine and no set.
        assert_eq!(ClusterSpec::unit(2).num_machines(), 1);
        assert!(ClusterSpec::unit(2).machines().is_none());
    }

    #[test]
    fn validate_dag_rejects_a_task_no_single_machine_can_hold() {
        use crate::TransferMode;
        // Aggregate capacity is 1.0 but each machine holds only 0.5: a
        // 0.7 task fits the sum yet would deadlock the simulation.
        let machines = MachineSet::uniform(
            2,
            ResourceVec::from_slice(&[0.5]),
            4,
            TransferMode::Direct,
            0,
            8,
        )
        .unwrap();
        let spec = ClusterSpec::hetero(machines).unwrap();
        let mut b = DagBuilder::new(1);
        let t = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.7])));
        let dag = b.build().unwrap();
        assert_eq!(
            spec.validate_dag(&dag).unwrap_err(),
            ClusterError::TaskExceedsCapacity(TaskId::new(t.index()))
        );
        // A 0.4 task fits machine 0 and passes.
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(1, ResourceVec::from_slice(&[0.4])));
        assert!(spec.validate_dag(&b.build().unwrap()).is_ok());
    }

    #[test]
    fn hetero_spec_round_trips_through_serde_and_legacy_json_parses() {
        use crate::TransferMode;
        let machines = MachineSet::uniform(
            3,
            ResourceVec::from_slice(&[1.0, 1.0]),
            2,
            TransferMode::ViaMaster,
            5,
            16,
        )
        .unwrap();
        let spec = ClusterSpec::hetero(machines).unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // A pre-hetero spec (no `machines` key) still deserializes.
        let legacy: ClusterSpec = serde_json::from_str("{\"capacity\":[1.0,1.0]}").unwrap();
        assert_eq!(legacy, ClusterSpec::unit(2));
    }
}
