//! The decoupled scheduling action space.

use std::fmt;

use serde::{Deserialize, Serialize};
use spear_dag::TaskId;

/// One agent decision (paper §III-B).
///
/// For `n` ready tasks the action space is `{-1, 1, …, n}`: either commit
/// one ready task to the cluster at the current time (time does not
/// advance), or *process* — advance time to the next task completion. This
/// decoupling shrinks the action space from `2^n` subsets to `n + 1`
/// choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Start the given ready task now, consuming its demand.
    Schedule(TaskId),
    /// Advance the clock until at least one running task finishes
    /// (the paper's `-1` action).
    Process,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Schedule(t) => write!(f, "schedule({t})"),
            Action::Process => write!(f, "process"),
        }
    }
}

impl Action {
    /// The task this action schedules, if any.
    pub fn task(self) -> Option<TaskId> {
        match self {
            Action::Schedule(t) => Some(t),
            Action::Process => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Action::Schedule(TaskId::new(3)).to_string(), "schedule(t3)");
        assert_eq!(Action::Process.to_string(), "process");
    }

    #[test]
    fn task_accessor() {
        assert_eq!(
            Action::Schedule(TaskId::new(1)).task(),
            Some(TaskId::new(1))
        );
        assert_eq!(Action::Process.task(), None);
    }
}
