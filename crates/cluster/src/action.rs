//! The decoupled scheduling action space.

use std::fmt;

use serde::{Deserialize, Serialize};
use spear_dag::TaskId;

/// One agent decision (paper §III-B).
///
/// For `n` ready tasks the action space is `{-1, 1, …, n}`: either commit
/// one ready task to the cluster at the current time (time does not
/// advance), or *process* — advance time to the next task completion. This
/// decoupling shrinks the action space from `2^n` subsets to `n + 1`
/// choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Start the given ready task now, consuming its demand. The only
    /// scheduling action of the single-box regime (the simulator rejects
    /// it on heterogeneous clusters, where a machine must be named).
    Schedule(TaskId),
    /// Start the given ready task (first field) now on a specific machine
    /// (second field) of a heterogeneous cluster, consuming its demand
    /// there. On a single-box cluster `Place(t, 0)` is equivalent to
    /// `Schedule(t)`.
    Place(TaskId, u32),
    /// Advance the clock until at least one running task finishes
    /// (the paper's `-1` action).
    Process,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Schedule(t) => write!(f, "schedule({t})"),
            Action::Place(task, machine) => write!(f, "place({task}@m{machine})"),
            Action::Process => write!(f, "process"),
        }
    }
}

impl Action {
    /// The task this action schedules, if any.
    pub fn task(self) -> Option<TaskId> {
        match self {
            Action::Schedule(t) => Some(t),
            Action::Place(task, _) => Some(task),
            Action::Process => None,
        }
    }

    /// The machine this action places its task on: explicit for
    /// [`Action::Place`], machine 0 for [`Action::Schedule`] (the
    /// single-box regime's only machine), `None` for
    /// [`Action::Process`].
    pub fn machine(self) -> Option<u32> {
        match self {
            Action::Schedule(_) => Some(0),
            Action::Place(_, machine) => Some(machine),
            Action::Process => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Action::Schedule(TaskId::new(3)).to_string(), "schedule(t3)");
        assert_eq!(Action::Place(TaskId::new(3), 2).to_string(), "place(t3@m2)");
        assert_eq!(Action::Process.to_string(), "process");
    }

    #[test]
    fn task_accessor() {
        assert_eq!(
            Action::Schedule(TaskId::new(1)).task(),
            Some(TaskId::new(1))
        );
        assert_eq!(
            Action::Place(TaskId::new(1), 2).task(),
            Some(TaskId::new(1))
        );
        assert_eq!(Action::Process.task(), None);
    }

    #[test]
    fn machine_accessor() {
        assert_eq!(Action::Schedule(TaskId::new(1)).machine(), Some(0));
        assert_eq!(Action::Place(TaskId::new(1), 2).machine(), Some(2));
        assert_eq!(Action::Process.machine(), None);
    }
}
