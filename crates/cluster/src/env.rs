//! The environment layer: one place where episodes are stepped.
//!
//! Every consumer of the simulator used to hand-roll the same
//! `legal_actions` → pick → `apply` → `is_terminal` loop with slightly
//! different buffering, RNG threading and error handling. This module is
//! the single seam they now share:
//!
//! * [`Env`] — the MDP view of the simulator (`reset` / `legal_into` /
//!   `step` / `observe` / `is_terminal` / `makespan`), implemented by
//!   [`SimEnv`] over [`SimState`];
//! * [`DecisionPolicy`] — "given the observation and the legal actions,
//!   pick one", generic over the RNG so both seeded and deterministic
//!   policies fit;
//! * [`EpisodeDriver`] — owns the scratch buffers from the allocation-free
//!   hot path (`legal_actions_into` / `apply_legal`) and runs episodes to
//!   termination (or a step bound) without allocating in steady state.
//!
//! The n+1 decoupled action semantics (which actions are legal, what a
//! step does) live in [`SimState`]; everything above this module only
//! decides *which* legal action to take.

use std::cell::Cell;

use rand::{Rng, RngCore};
use spear_dag::{Dag, TaskId};
use spear_obs::{Counter, Gauge, Histogram, Obs};

use crate::audit::InvariantAuditor;
use crate::faults::FaultPlan;
use crate::jobs::{JctReport, JobQueue};
use crate::{Action, ClusterError, ClusterSpec, Schedule, SimState, SpearError};

/// The typed fails-fast error for a retry-exhausted (poisoned) state.
fn exhaustion_error(state: &SimState, task: TaskId) -> SpearError {
    SpearError::Cluster(ClusterError::RetriesExhausted {
        task,
        attempts: state.attempts_of(task),
    })
}

/// The static part of an environment an episode runs in: the job and the
/// cluster. Passed to every [`DecisionPolicy::decide`] call so policies
/// need not capture the borrows themselves.
#[derive(Debug, Clone, Copy)]
pub struct EnvContext<'a> {
    /// The job being scheduled.
    pub dag: &'a Dag,
    /// The cluster it runs on.
    pub spec: &'a ClusterSpec,
}

/// The MDP interface over the scheduling simulator.
///
/// `legal_into` and `step_trusted` are the allocation-free pair from the
/// hot path; `step` is the checked variant that returns a typed error for
/// illegal actions instead of corrupting the state.
pub trait Env {
    /// The job being scheduled.
    fn dag(&self) -> &Dag;

    /// The cluster capacity model.
    fn spec(&self) -> &ClusterSpec;

    /// Rewinds to the initial state of the episode.
    ///
    /// # Errors
    ///
    /// Fails if the DAG cannot run on the cluster.
    fn reset(&mut self) -> Result<(), SpearError>;

    /// Writes the legal actions of the current state into `out` (clearing
    /// it first): ready-and-fitting `Schedule` actions in ascending task-id
    /// order, then `Process` if anything is running. Non-terminal states
    /// always have at least one legal action.
    fn legal_into(&self, out: &mut Vec<Action>);

    /// Applies `action` after checking its legality.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError::Cluster`] if `action` is illegal in the
    /// current state; the state is unchanged on error.
    fn step(&mut self, action: Action) -> Result<(), SpearError>;

    /// Applies an action known to be legal (obtained from
    /// [`Env::legal_into`] on this exact state) without re-checking;
    /// legality is debug-asserted. The hot-path counterpart of
    /// [`Env::step`].
    fn step_trusted(&mut self, action: Action);

    /// The full observation of the current state.
    fn observe(&self) -> &SimState;

    /// Whether the episode is over — every task finished, or (for
    /// environments with a wall-clock horizon) the episode was cut off;
    /// [`Env::is_truncated`] distinguishes the two.
    fn is_terminal(&self) -> bool;

    /// Whether the episode ended by hitting an environment-imposed bound
    /// (e.g. [`MultiJobEnv`]'s wall-clock horizon) rather than by
    /// completing every task. Environments without such a bound — like
    /// [`SimEnv`] — never truncate, which this default encodes.
    fn is_truncated(&self) -> bool {
        false
    }

    /// The episode's makespan, once terminal.
    fn makespan(&self) -> Option<u64>;

    /// The static context handed to policies.
    fn ctx(&self) -> EnvContext<'_> {
        EnvContext {
            dag: self.dag(),
            spec: self.spec(),
        }
    }
}

/// The standard single-job environment: a [`SimState`] plus the borrows it
/// is stepped against.
///
/// `clone`/`clone_from` reuse the state's interior allocations, so keeping
/// one `SimEnv` as a scratch and `clone_from`ing a root into it (the MCTS
/// pattern) stays allocation-free.
#[derive(Debug)]
pub struct SimEnv<'a> {
    dag: &'a Dag,
    spec: &'a ClusterSpec,
    state: SimState,
    faults: FaultPlan,
}

impl<'a> SimEnv<'a> {
    /// Creates the environment in the initial state of `dag` on `spec`.
    ///
    /// # Errors
    ///
    /// Fails if the DAG cannot run on the cluster.
    pub fn new(dag: &'a Dag, spec: &'a ClusterSpec) -> Result<Self, SpearError> {
        let state = SimState::new(dag, spec)?;
        Ok(SimEnv {
            dag,
            spec,
            state,
            faults: FaultPlan::none(),
        })
    }

    /// Attaches a fault-injection plan; [`Env::reset`] re-applies it, so
    /// every episode of this environment replays the same seeded faults.
    /// Call before the first step. A [`FaultPlan::none`] plan leaves the
    /// environment bit-identical to an unfaulted one.
    #[must_use]
    pub fn with_faults(self, plan: FaultPlan) -> Self {
        SimEnv {
            dag: self.dag,
            spec: self.spec,
            state: self.state.with_faults(plan),
            faults: plan,
        }
    }

    /// Adopts an existing simulation state (e.g. a replayed search node),
    /// inheriting whatever fault plan the state carries.
    pub fn from_state(dag: &'a Dag, spec: &'a ClusterSpec, state: SimState) -> Self {
        let faults = state.fault_plan().copied().unwrap_or_default();
        SimEnv {
            dag,
            spec,
            state,
            faults,
        }
    }

    /// The current simulation state (same as [`Env::observe`]).
    pub fn state(&self) -> &SimState {
        &self.state
    }

    /// Releases the owned simulation state (the reverse of
    /// [`SimEnv::from_state`]).
    pub fn into_state(self) -> SimState {
        self.state
    }

    /// Extracts the completed schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::RetriesExhausted`] if fault injection
    /// poisoned the episode, and [`SpearError::IncompleteEpisode`] if the
    /// episode has not reached the terminal state.
    pub fn into_schedule(self) -> Result<Schedule, SpearError> {
        if let Some(task) = self.state.exhausted() {
            return Err(exhaustion_error(&self.state, task));
        }
        if !self.state.is_terminal(self.dag) {
            return Err(SpearError::IncompleteEpisode);
        }
        Ok(self.state.into_schedule(self.dag))
    }
}

impl Clone for SimEnv<'_> {
    fn clone(&self) -> Self {
        SimEnv {
            dag: self.dag,
            spec: self.spec,
            state: self.state.clone(),
            faults: self.faults,
        }
    }

    /// Reuses `self.state`'s interior allocations.
    fn clone_from(&mut self, source: &Self) {
        self.dag = source.dag;
        self.spec = source.spec;
        self.state.clone_from(&source.state);
        self.faults = source.faults;
    }
}

impl Env for SimEnv<'_> {
    fn dag(&self) -> &Dag {
        self.dag
    }

    fn spec(&self) -> &ClusterSpec {
        self.spec
    }

    fn reset(&mut self) -> Result<(), SpearError> {
        self.state = SimState::new(self.dag, self.spec)?.with_faults(self.faults);
        Ok(())
    }

    fn legal_into(&self, out: &mut Vec<Action>) {
        self.state.legal_actions_into(self.dag, out);
    }

    fn step(&mut self, action: Action) -> Result<(), SpearError> {
        self.state.apply(self.dag, action)?;
        Ok(())
    }

    fn step_trusted(&mut self, action: Action) {
        self.state.apply_legal(self.dag, action);
    }

    fn observe(&self) -> &SimState {
        &self.state
    }

    fn is_terminal(&self) -> bool {
        self.state.is_terminal(self.dag)
    }

    fn makespan(&self) -> Option<u64> {
        self.state.makespan()
    }
}

/// The continuous-arrival environment: a [`JobQueue`]'s union DAG stepped
/// by a multi-job [`SimState`], with an optional wall-clock horizon.
///
/// `MultiJobEnv` implements [`Env`] over the *union DAG*, so every
/// consumer of the trait — `EpisodeDriver`, the baselines, sequential and
/// tree-parallel MCTS, the DRL featurizer — schedules a job stream through
/// the same code path as a single job. The differences are confined to the
/// state underneath: sources of unarrived jobs are withheld from the
/// frontier, and `Process` advances the clock to the next *event*
/// (completion or arrival).
///
/// Termination: the episode is terminal when the queue is drained and
/// every job completed, or — with [`MultiJobEnv::with_horizon`] — once the
/// clock reaches the horizon, in which case [`Env::is_truncated`] reports
/// `true` and [`EpisodeDriver::drive`] returns
/// [`DriveOutcome::Truncated`]. Either way,
/// [`MultiJobEnv::jct_report`] tallies per-job completion times (jobs
/// with unscheduled tasks count as unfinished).
#[derive(Debug)]
pub struct MultiJobEnv<'a> {
    queue: &'a JobQueue,
    spec: &'a ClusterSpec,
    state: SimState,
    horizon: Option<u64>,
    faults: FaultPlan,
}

impl<'a> MultiJobEnv<'a> {
    /// Creates the environment at time 0 with only time-0 jobs visible.
    ///
    /// # Errors
    ///
    /// Fails if the union DAG cannot run on the cluster.
    pub fn new(queue: &'a JobQueue, spec: &'a ClusterSpec) -> Result<Self, SpearError> {
        let state = SimState::new_multi(queue, spec)?;
        Ok(MultiJobEnv {
            queue,
            spec,
            state,
            horizon: None,
            faults: FaultPlan::none(),
        })
    }

    /// Caps the episode at `horizon` clock slots: the episode ends (as
    /// truncated) at the first decision point with `clock >= horizon`.
    #[must_use]
    pub fn with_horizon(mut self, horizon: Option<u64>) -> Self {
        self.horizon = horizon;
        self
    }

    /// Attaches a fault-injection plan; [`Env::reset`] re-applies it, so
    /// every episode of this environment replays the same seeded faults.
    /// Call before the first step. A [`FaultPlan::none`] plan leaves the
    /// environment bit-identical to an unfaulted one.
    #[must_use]
    pub fn with_faults(self, plan: FaultPlan) -> Self {
        MultiJobEnv {
            queue: self.queue,
            spec: self.spec,
            state: self.state.with_faults(plan),
            horizon: self.horizon,
            faults: plan,
        }
    }

    /// The job queue this episode schedules.
    pub fn queue(&self) -> &JobQueue {
        self.queue
    }

    /// The wall-clock horizon, if any.
    pub fn horizon(&self) -> Option<u64> {
        self.horizon
    }

    /// The current simulation state (same as [`Env::observe`]).
    pub fn state(&self) -> &SimState {
        &self.state
    }

    /// Releases the owned simulation state.
    pub fn into_state(self) -> SimState {
        self.state
    }

    /// Per-job completion times of the episode so far — complete after a
    /// terminal episode, partial (with a non-zero unfinished count) after
    /// a truncated one.
    pub fn jct_report(&self) -> JctReport {
        self.queue.jct_report_partial(&self.state)
    }

    /// Extracts the completed union schedule (split it per job with
    /// [`JobQueue::per_job_schedules`]).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::RetriesExhausted`] if fault injection
    /// poisoned the episode, and [`SpearError::IncompleteEpisode`] if some
    /// job has unfinished tasks — including horizon-truncated episodes.
    pub fn into_schedule(self) -> Result<Schedule, SpearError> {
        if let Some(task) = self.state.exhausted() {
            return Err(exhaustion_error(&self.state, task));
        }
        if !self.state.is_terminal(self.queue.union_dag()) {
            return Err(SpearError::IncompleteEpisode);
        }
        Ok(self.state.into_schedule(self.queue.union_dag()))
    }

    fn complete(&self) -> bool {
        self.state.is_terminal(self.queue.union_dag())
    }

    fn horizon_reached(&self) -> bool {
        self.horizon.is_some_and(|h| self.state.clock() >= h)
    }
}

impl Clone for MultiJobEnv<'_> {
    fn clone(&self) -> Self {
        MultiJobEnv {
            queue: self.queue,
            spec: self.spec,
            state: self.state.clone(),
            horizon: self.horizon,
            faults: self.faults,
        }
    }

    /// Reuses `self.state`'s interior allocations.
    fn clone_from(&mut self, source: &Self) {
        self.queue = source.queue;
        self.spec = source.spec;
        self.state.clone_from(&source.state);
        self.horizon = source.horizon;
        self.faults = source.faults;
    }
}

impl Env for MultiJobEnv<'_> {
    fn dag(&self) -> &Dag {
        self.queue.union_dag()
    }

    fn spec(&self) -> &ClusterSpec {
        self.spec
    }

    fn reset(&mut self) -> Result<(), SpearError> {
        self.state = SimState::new_multi(self.queue, self.spec)?.with_faults(self.faults);
        Ok(())
    }

    fn legal_into(&self, out: &mut Vec<Action>) {
        self.state.legal_actions_into(self.queue.union_dag(), out);
    }

    fn step(&mut self, action: Action) -> Result<(), SpearError> {
        self.state.apply(self.queue.union_dag(), action)?;
        Ok(())
    }

    fn step_trusted(&mut self, action: Action) {
        self.state.apply_legal(self.queue.union_dag(), action);
    }

    fn observe(&self) -> &SimState {
        &self.state
    }

    fn is_terminal(&self) -> bool {
        self.complete() || self.horizon_reached()
    }

    fn is_truncated(&self) -> bool {
        !self.complete() && self.horizon_reached()
    }

    fn makespan(&self) -> Option<u64> {
        self.state.makespan()
    }
}

/// A decision rule over legal actions: the policy side of an episode.
///
/// Generic over the RNG (`R: Rng + ?Sized`) so stochastic policies thread
/// the caller's seeded generator while deterministic policies accept any —
/// including [`NoRng`], which panics if drawn from.
pub trait DecisionPolicy<R: Rng + ?Sized> {
    /// Picks one of `legal` for the current `state`. `legal` is exactly
    /// [`Env::legal_into`]'s output for `state` and is never empty.
    fn decide(
        &mut self,
        ctx: &EnvContext<'_>,
        state: &SimState,
        legal: &[Action],
        rng: &mut R,
    ) -> Action;

    /// Policy name for reports.
    fn name(&self) -> &str {
        "policy"
    }
}

impl<R: Rng + ?Sized, P: DecisionPolicy<R> + ?Sized> DecisionPolicy<R> for &mut P {
    fn decide(
        &mut self,
        ctx: &EnvContext<'_>,
        state: &SimState,
        legal: &[Action],
        rng: &mut R,
    ) -> Action {
        (**self).decide(ctx, state, legal, rng)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Wraps a closure `(ctx, state, legal) -> Action` as a deterministic
/// [`DecisionPolicy`] (for any RNG type). The greedy baselines and the
/// expert are all closures over a scorer.
#[derive(Debug, Clone)]
pub struct FnPolicy<F>(pub F);

impl<R, F> DecisionPolicy<R> for FnPolicy<F>
where
    R: Rng + ?Sized,
    F: FnMut(&EnvContext<'_>, &SimState, &[Action]) -> Action,
{
    fn decide(
        &mut self,
        ctx: &EnvContext<'_>,
        state: &SimState,
        legal: &[Action],
        _rng: &mut R,
    ) -> Action {
        (self.0)(ctx, state, legal)
    }

    fn name(&self) -> &str {
        "fn-policy"
    }
}

/// The RNG for callers whose policies are deterministic: any draw is a
/// bug, so it panics instead of silently de-synchronizing a stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRng;

impl RngCore for NoRng {
    fn next_u64(&mut self) -> u64 {
        panic!("a deterministic policy drew randomness from NoRng");
    }
}

/// How a [`EpisodeDriver::drive`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveOutcome {
    /// The episode reached the terminal state; the environment now has a
    /// makespan and a complete schedule.
    Terminal {
        /// Actions applied during this call.
        steps: u64,
    },
    /// The step bound was hit first (checked *before* each decision, so a
    /// truncated call never consumes policy randomness for the unreached
    /// step); the environment holds a partial state.
    Truncated {
        /// Actions applied during this call.
        steps: u64,
    },
}

impl DriveOutcome {
    /// Actions applied during the call, terminal or not.
    pub fn steps(&self) -> u64 {
        match *self {
            DriveOutcome::Terminal { steps } | DriveOutcome::Truncated { steps } => steps,
        }
    }

    /// Whether the episode completed.
    pub fn is_terminal(&self) -> bool {
        matches!(self, DriveOutcome::Terminal { .. })
    }
}

/// Whether episodes are audited by default: always in debug builds (every
/// test exercises the auditor for free), and in release builds only with
/// the `audit` cargo feature (benchmarks stay unperturbed).
fn default_auditor() -> Option<InvariantAuditor> {
    cfg!(any(debug_assertions, feature = "audit")).then(InvariantAuditor::new)
}

/// The driver's simulation instruments: built lazily on the first driven
/// step once an enabled [`Obs`] sink is attached, so un-instrumented
/// drivers never register metrics.
#[derive(Debug, Clone)]
struct EpisodeObs {
    steps: Counter,
    admissions: Counter,
    clock_advances: Counter,
    episodes: Counter,
    backlog: Histogram,
    makespan: Gauge,
    occupancy: Vec<Gauge>,
    jobs_pending: Gauge,
    jobs_in_flight: Gauge,
    fault_failures: Counter,
    fault_stragglers: Counter,
    fault_retries: Counter,
    reexec_latency: Histogram,
    /// Cumulative state totals already flushed into the fault counters —
    /// counters are monotone across episodes while the state's totals
    /// rewind on reset, so steps record deltas against these.
    seen_failures: Cell<u64>,
    seen_straggles: Cell<u64>,
}

impl EpisodeObs {
    fn new(obs: &Obs, dims: usize) -> Self {
        EpisodeObs {
            steps: obs.counter("sim.steps"),
            admissions: obs.counter("sim.admissions"),
            clock_advances: obs.counter("sim.clock_advances"),
            episodes: obs.counter("sim.episodes"),
            backlog: obs.histogram("sim.backlog_depth"),
            makespan: obs.gauge("sim.makespan"),
            occupancy: (0..dims)
                .map(|i| obs.gauge(&format!("sim.occupancy.r{i}")))
                .collect(),
            jobs_pending: obs.gauge("sim.jobs.pending"),
            jobs_in_flight: obs.gauge("sim.jobs.in_flight"),
            fault_failures: obs.counter("sim.faults.injected"),
            fault_stragglers: obs.counter("sim.faults.stragglers"),
            fault_retries: obs.counter("sim.faults.retries"),
            reexec_latency: obs.histogram("sim.faults.reexec_latency"),
            seen_failures: Cell::new(0),
            seen_straggles: Cell::new(0),
        }
    }

    /// Re-bases the fault-delta tracking on `env`'s current totals — call
    /// at the start of a drive so a reset (rewound) state does not make
    /// the deltas go backwards.
    fn sync_faults<E: Env>(&self, env: &E) {
        let state = env.observe();
        self.seen_failures.set(state.fault_failures());
        self.seen_straggles.set(state.fault_straggles());
    }

    /// Records one applied action. Admissions count `Schedule`s; clock
    /// advances sample the post-advance backlog (ready-set depth) and
    /// per-resource occupancy fractions.
    fn record_step<E: Env>(&self, env: &E, action: Action) {
        self.steps.incr();
        match action {
            Action::Schedule(_) | Action::Place(..) => self.admissions.incr(),
            Action::Process => {
                self.clock_advances.incr();
                let state = env.observe();
                self.backlog.record(state.ready().len() as u64);
                let used = state.used().as_slice();
                let cap = state.capacity().as_slice();
                for (gauge, (u, c)) in self.occupancy.iter().zip(used.iter().zip(cap)) {
                    if *c > 0.0 {
                        gauge.set(u / c);
                    }
                }
                if state.is_multi_job() {
                    self.jobs_pending.set(state.pending_jobs() as f64);
                    self.jobs_in_flight.set(state.jobs_in_flight() as f64);
                }
            }
        }
        let state = env.observe();
        if state.fault_plan().is_some() {
            let failures = state.fault_failures();
            self.fault_failures
                .add(failures.saturating_sub(self.seen_failures.get()));
            self.seen_failures.set(failures);
            let straggles = state.fault_straggles();
            self.fault_stragglers
                .add(straggles.saturating_sub(self.seen_straggles.get()));
            self.seen_straggles.set(straggles);
            if let Action::Schedule(task) = action {
                if state.attempts_of(task) > 1 {
                    self.fault_retries.incr();
                    if let Some(failed_at) = state.last_failure_of(task) {
                        // Re-execution latency: slots the task waited
                        // between its failure and its re-launch.
                        self.reexec_latency
                            .record(state.clock().saturating_sub(failed_at));
                    }
                }
            }
        }
    }

    fn record_terminal<E: Env>(&self, env: &E) {
        self.episodes.incr();
        if let Some(makespan) = env.makespan() {
            self.makespan.set(makespan as f64);
        }
    }
}

/// Runs episodes of a [`DecisionPolicy`] on an [`Env`], owning the
/// legal-action scratch buffer so steady-state stepping performs no heap
/// allocations (PR 1's hot-path contract, now behind one reusable driver).
///
/// In debug builds (and release builds with the `audit` feature) every
/// driven step is cross-checked by an [`InvariantAuditor`]; auditing is
/// pure observation, so audited and unaudited episodes are bit-identical.
/// [`EpisodeDriver::with_audit`] overrides the default.
///
/// With the `obs` feature an [`Obs`] sink attached via
/// [`EpisodeDriver::with_obs`] records per-step simulation metrics
/// (`sim.steps`, `sim.admissions`, `sim.clock_advances`,
/// `sim.backlog_depth`, `sim.occupancy.r*`, `sim.episodes`,
/// `sim.makespan`, for multi-job episodes `sim.jobs.pending` /
/// `sim.jobs.in_flight`, and for fault-injected episodes
/// `sim.faults.injected` / `sim.faults.stragglers` / `sim.faults.retries`
/// plus the `sim.faults.reexec_latency` histogram). Instrumentation is pure
/// observation — it reads the state and never influences a decision — and
/// without the feature every recording call compiles to nothing.
#[derive(Debug, Clone)]
pub struct EpisodeDriver<P> {
    policy: P,
    legal: Vec<Action>,
    auditor: Option<InvariantAuditor>,
    obs: Obs,
    episode_obs: Option<EpisodeObs>,
}

impl<P: Default> Default for EpisodeDriver<P> {
    fn default() -> Self {
        EpisodeDriver::new(P::default())
    }
}

impl<P> EpisodeDriver<P> {
    /// Creates a driver around `policy` with an empty scratch buffer.
    pub fn new(policy: P) -> Self {
        EpisodeDriver {
            policy,
            legal: Vec::new(),
            auditor: default_auditor(),
            obs: Obs::noop(),
            episode_obs: None,
        }
    }

    /// Creates a driver reusing an already-warm scratch buffer — lets hot
    /// paths rebuild a short-lived driver per episode without losing the
    /// buffer's capacity.
    pub fn from_parts(policy: P, legal: Vec<Action>) -> Self {
        EpisodeDriver {
            policy,
            legal,
            auditor: default_auditor(),
            obs: Obs::noop(),
            episode_obs: None,
        }
    }

    /// Releases the policy and the scratch buffer (see
    /// [`EpisodeDriver::from_parts`]).
    pub fn into_parts(self) -> (P, Vec<Action>) {
        (self.policy, self.legal)
    }

    /// Forces invariant auditing on or off, overriding the build-profile
    /// default (see [`EpisodeDriver::audits`]).
    #[must_use]
    pub fn with_audit(mut self, on: bool) -> Self {
        self.auditor = on.then(InvariantAuditor::new);
        self
    }

    /// Whether driven steps are being audited.
    pub fn audits(&self) -> bool {
        self.auditor.is_some()
    }

    /// Attaches a metric sink; driven steps record simulation metrics
    /// through it (see the type-level docs for the metric names). Pass
    /// [`Obs::noop`] to detach.
    #[must_use]
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.set_obs(obs);
        self
    }

    /// In-place variant of [`EpisodeDriver::with_obs`].
    pub fn set_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
        self.episode_obs = None;
    }

    /// Whether driven steps record metrics into an enabled sink.
    pub fn observes(&self) -> bool {
        self.obs.is_enabled()
    }

    /// Builds the instrument handles on first use. Gated on the constant
    /// [`spear_obs::compiled`] so disabled builds optimize the whole
    /// instrumentation path out of the stepping loops.
    fn prepare_obs<E: Env>(&mut self, env: &E) {
        if spear_obs::compiled() && self.episode_obs.is_none() && self.obs.is_enabled() {
            self.episode_obs = Some(EpisodeObs::new(&self.obs, env.spec().capacity().dims()));
        }
    }

    /// The wrapped policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the wrapped policy.
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Steps `env` until it is terminal or `max_steps` actions were
    /// applied, checking every action's legality ([`Env::step`]).
    ///
    /// When auditing is on (see [`EpisodeDriver::audits`]), the state is
    /// cross-checked before the first decision and after every applied
    /// action; clock monotonicity is tracked within one `drive` call.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError::Cluster`] if the policy picks an illegal
    /// action — or, fault-injected, [`ClusterError::RetriesExhausted`] if
    /// a task burned its whole retry budget (the episode fails fast; it
    /// can never complete) — or [`SpearError::Audit`] if the state
    /// violates a simulation invariant.
    pub fn drive<R, E>(
        &mut self,
        env: &mut E,
        rng: &mut R,
        max_steps: u64,
    ) -> Result<DriveOutcome, SpearError>
    where
        R: Rng + ?Sized,
        E: Env,
        P: DecisionPolicy<R>,
    {
        if let Some(auditor) = &mut self.auditor {
            auditor.reset();
            auditor.check(env.dag(), env.observe())?;
        }
        self.prepare_obs(env);
        if spear_obs::compiled() {
            if let Some(eo) = &self.episode_obs {
                eo.sync_faults(env);
            }
        }
        let mut steps = 0u64;
        while !env.is_terminal() {
            if steps >= max_steps {
                return Ok(DriveOutcome::Truncated { steps });
            }
            env.legal_into(&mut self.legal);
            debug_assert!(!self.legal.is_empty(), "non-terminal state has no actions");
            let ctx = env.ctx();
            let action = self.policy.decide(&ctx, env.observe(), &self.legal, rng);
            env.step(action)?;
            if let Some(auditor) = &mut self.auditor {
                auditor.check(env.dag(), env.observe())?;
            }
            if spear_obs::compiled() {
                if let Some(eo) = &self.episode_obs {
                    eo.record_step(env, action);
                }
            }
            steps += 1;
        }
        // A retry-exhausted episode is terminal but poisoned: no schedule
        // can ever emerge from it, so surface the typed error here instead
        // of letting callers trip over a missing makespan.
        if let Some(task) = env.observe().exhausted() {
            return Err(exhaustion_error(env.observe(), task));
        }
        // Environments with their own bound (a multi-job wall-clock
        // horizon) exit the loop "terminal" but truncated — report that
        // faithfully and skip the completed-episode instruments.
        if env.is_truncated() {
            return Ok(DriveOutcome::Truncated { steps });
        }
        if spear_obs::compiled() {
            if let Some(eo) = &self.episode_obs {
                eo.record_terminal(env);
            }
        }
        Ok(DriveOutcome::Terminal { steps })
    }

    /// Like [`EpisodeDriver::drive`] but applies actions through
    /// [`Env::step_trusted`] — the allocation- and check-free loop for hot
    /// paths whose policies are known to pick only legal actions (legality
    /// is still debug-asserted). This loop has no error channel, so a
    /// retry-exhausted (poisoned) fault-injected episode comes back as
    /// `Terminal` — callers driving faulty environments must check
    /// [`SimState::exhausted`] on the observation (or use
    /// [`EpisodeDriver::drive`], which fails fast with a typed error).
    ///
    /// # Panics
    ///
    /// Panics on an invariant violation when auditing is on — a corrupt
    /// state on the trusted path is always a bug.
    pub fn drive_trusted<R, E>(&mut self, env: &mut E, rng: &mut R, max_steps: u64) -> DriveOutcome
    where
        R: Rng + ?Sized,
        E: Env,
        P: DecisionPolicy<R>,
    {
        let audit = |auditor: &mut Option<InvariantAuditor>, env: &E| {
            if let Some(auditor) = auditor {
                if let Err(violation) = auditor.check(env.dag(), env.observe()) {
                    panic!("invariant audit failed on the trusted path: {violation}");
                }
            }
        };
        if let Some(auditor) = &mut self.auditor {
            auditor.reset();
        }
        audit(&mut self.auditor, env);
        self.prepare_obs(env);
        if spear_obs::compiled() {
            if let Some(eo) = &self.episode_obs {
                eo.sync_faults(env);
            }
        }
        let mut steps = 0u64;
        while !env.is_terminal() {
            if steps >= max_steps {
                return DriveOutcome::Truncated { steps };
            }
            env.legal_into(&mut self.legal);
            debug_assert!(!self.legal.is_empty(), "non-terminal state has no actions");
            let ctx = env.ctx();
            let action = self.policy.decide(&ctx, env.observe(), &self.legal, rng);
            env.step_trusted(action);
            audit(&mut self.auditor, env);
            if spear_obs::compiled() {
                if let Some(eo) = &self.episode_obs {
                    eo.record_step(env, action);
                }
            }
            steps += 1;
        }
        if env.is_truncated() {
            return DriveOutcome::Truncated { steps };
        }
        if spear_obs::compiled() {
            if let Some(eo) = &self.episode_obs {
                eo.record_terminal(env);
            }
        }
        DriveOutcome::Terminal { steps }
    }

    /// Runs one full episode of `dag` on `spec` from the initial state and
    /// returns the completed schedule.
    ///
    /// # Errors
    ///
    /// Fails if the DAG cannot run on the cluster or the policy picks an
    /// illegal action.
    pub fn run<R>(
        &mut self,
        dag: &Dag,
        spec: &ClusterSpec,
        rng: &mut R,
    ) -> Result<Schedule, SpearError>
    where
        R: Rng + ?Sized,
        P: DecisionPolicy<R>,
    {
        let mut env = SimEnv::new(dag, spec)?;
        self.drive(&mut env, rng, u64::MAX)?;
        env.into_schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spear_dag::{DagBuilder, ResourceVec, Task, TaskId};

    fn diamond() -> Dag {
        // 0 -> {1, 2} -> 3
        let mut b = DagBuilder::new(1);
        let a = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
        let l = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.4])));
        let r = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.4])));
        let d = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
        b.add_edge(a, l).unwrap();
        b.add_edge(a, r).unwrap();
        b.add_edge(l, d).unwrap();
        b.add_edge(r, d).unwrap();
        b.build().unwrap()
    }

    /// First legal action — deterministic, so it runs with [`NoRng`].
    fn first_legal() -> FnPolicy<impl FnMut(&EnvContext<'_>, &SimState, &[Action]) -> Action> {
        FnPolicy(|_: &EnvContext<'_>, _: &SimState, legal: &[Action]| legal[0])
    }

    #[test]
    fn env_reset_and_step_round_trip() {
        let dag = diamond();
        let spec = ClusterSpec::unit(1);
        let mut env = SimEnv::new(&dag, &spec).unwrap();
        assert!(!env.is_terminal());
        assert_eq!(env.makespan(), None);
        let mut legal = Vec::new();
        env.legal_into(&mut legal);
        assert_eq!(legal, vec![Action::Schedule(TaskId::new(0))]);
        env.step(legal[0]).unwrap();
        assert_eq!(env.observe().start_of(TaskId::new(0)), Some(0));
        env.reset().unwrap();
        assert_eq!(env.observe().start_of(TaskId::new(0)), None);
        assert_eq!(env.ctx().dag.len(), 4);
    }

    #[test]
    fn illegal_step_is_a_typed_error_and_leaves_state_intact() {
        let dag = diamond();
        let spec = ClusterSpec::unit(1);
        let mut env = SimEnv::new(&dag, &spec).unwrap();
        let err = env.step(Action::Schedule(TaskId::new(3))).unwrap_err();
        assert_eq!(
            err,
            SpearError::Cluster(crate::ClusterError::TaskNotReady(TaskId::new(3)))
        );
        assert_eq!(env.observe().clock(), 0);
    }

    #[test]
    fn driver_completes_episode_and_matches_hand_rolled_loop() {
        let dag = diamond();
        let spec = ClusterSpec::unit(1);
        let driven = EpisodeDriver::new(first_legal())
            .run(&dag, &spec, &mut NoRng)
            .unwrap();

        // The same policy, hand-rolled.
        let mut state = SimState::new(&dag, &spec).unwrap();
        while !state.is_terminal(&dag) {
            let legal = state.legal_actions(&dag);
            state.apply(&dag, legal[0]).unwrap();
        }
        let manual = state.into_schedule(&dag);
        assert_eq!(driven, manual);
        driven.validate(&dag, &spec).unwrap();
    }

    #[test]
    fn trusted_and_checked_drives_are_identical() {
        let dag = diamond();
        let spec = ClusterSpec::unit(1);
        let mut a = SimEnv::new(&dag, &spec).unwrap();
        let mut b = SimEnv::new(&dag, &spec).unwrap();
        let mut driver = EpisodeDriver::new(first_legal());
        let oa = driver.drive(&mut a, &mut NoRng, u64::MAX).unwrap();
        let ob = driver.drive_trusted(&mut b, &mut NoRng, u64::MAX);
        assert_eq!(oa, ob);
        assert!(oa.is_terminal());
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(a.into_schedule().unwrap(), b.into_schedule().unwrap());
    }

    #[test]
    fn truncation_stops_before_the_decision() {
        let dag = diamond();
        let spec = ClusterSpec::unit(1);
        let mut env = SimEnv::new(&dag, &spec).unwrap();
        let mut draws = 0u64;
        let mut driver = EpisodeDriver::new(FnPolicy(
            |_: &EnvContext<'_>, _: &SimState, legal: &[Action]| {
                draws += 1;
                legal[0]
            },
        ));
        let outcome = driver.drive(&mut env, &mut NoRng, 2).unwrap();
        assert_eq!(outcome, DriveOutcome::Truncated { steps: 2 });
        drop(driver);
        // Exactly two decisions were made: the bound is checked before the
        // third decision, not after it.
        assert_eq!(draws, 2);
        assert!(!outcome.is_terminal());
        // A partial episode refuses to produce a schedule.
        assert_eq!(
            env.into_schedule().unwrap_err(),
            SpearError::IncompleteEpisode
        );
    }

    #[test]
    fn driver_resumes_after_truncation() {
        let dag = diamond();
        let spec = ClusterSpec::unit(1);
        let mut env = SimEnv::new(&dag, &spec).unwrap();
        let mut driver = EpisodeDriver::new(first_legal());
        let mut total = 0;
        loop {
            let outcome = driver.drive(&mut env, &mut NoRng, 1).unwrap();
            total += outcome.steps();
            if outcome.is_terminal() {
                break;
            }
        }
        assert!(total > 0);
        assert!(env.makespan().is_some());
    }

    #[test]
    fn stochastic_policies_thread_the_callers_rng() {
        let dag = diamond();
        let spec = ClusterSpec::unit(1);
        struct UniformRandom;
        impl<R: Rng + ?Sized> DecisionPolicy<R> for UniformRandom {
            fn decide(
                &mut self,
                _: &EnvContext<'_>,
                _: &SimState,
                legal: &[Action],
                rng: &mut R,
            ) -> Action {
                legal[rng.gen_range(0..legal.len())]
            }
        }
        let run = |seed: u64| {
            EpisodeDriver::new(UniformRandom)
                .run(&dag, &spec, &mut StdRng::seed_from_u64(seed))
                .unwrap()
        };
        assert_eq!(run(9), run(9), "same seed, same schedule");
    }

    mod multi_job {
        use super::*;
        use crate::JobQueue;

        fn queue() -> JobQueue {
            let job = |runtime: u64| {
                let mut b = DagBuilder::new(1);
                b.add_task(Task::new(runtime, ResourceVec::from_slice(&[0.6])));
                b.build().unwrap()
            };
            JobQueue::new(vec![(0, job(2)), (5, job(2)), (6, job(1))]).unwrap()
        }

        #[test]
        fn driver_runs_a_job_stream_to_completion() {
            let queue = queue();
            let spec = ClusterSpec::unit(1);
            let mut env = MultiJobEnv::new(&queue, &spec).unwrap();
            let outcome = EpisodeDriver::new(first_legal())
                .drive(&mut env, &mut NoRng, u64::MAX)
                .unwrap();
            assert!(outcome.is_terminal());
            assert!(!env.is_truncated());
            let report = env.jct_report();
            assert_eq!(report.completions().len(), 3);
            assert_eq!(report.unfinished(), 0);
            let schedule = env.into_schedule().unwrap();
            schedule.validate(queue.union_dag(), &spec).unwrap();
            // Job 2 (arrival 6) contends with job 1 (running 5..7 on 0.6
            // of 1.0): it waits for the free capacity.
            assert_eq!(report.completions()[2].arrival, 6);
            assert!(report.completions()[2].finish >= 7);
        }

        #[test]
        fn horizon_truncates_and_reports_partial_jcts() {
            let queue = queue();
            let spec = ClusterSpec::unit(1);
            let mut env = MultiJobEnv::new(&queue, &spec)
                .unwrap()
                .with_horizon(Some(3));
            let outcome = EpisodeDriver::new(first_legal())
                .drive(&mut env, &mut NoRng, u64::MAX)
                .unwrap();
            assert!(!outcome.is_terminal());
            assert!(env.is_truncated());
            let report = env.jct_report();
            assert_eq!(report.completions().len(), 1); // only the t=0 job
            assert_eq!(report.unfinished(), 2);
            let err = env.into_schedule().unwrap_err();
            assert_eq!(err, SpearError::IncompleteEpisode);
        }

        #[test]
        fn reset_rewinds_to_the_gated_initial_state() {
            let queue = queue();
            let spec = ClusterSpec::unit(1);
            let mut env = MultiJobEnv::new(&queue, &spec).unwrap();
            EpisodeDriver::new(first_legal())
                .drive(&mut env, &mut NoRng, u64::MAX)
                .unwrap();
            env.reset().unwrap();
            assert_eq!(env.observe().clock(), 0);
            assert_eq!(env.observe().ready(), &[TaskId::new(0)]);
            assert_eq!(env.observe().pending_jobs(), 2);
        }

        #[test]
        fn trusted_and_checked_multi_drives_are_identical() {
            let queue = queue();
            let spec = ClusterSpec::unit(1);
            let mut a = MultiJobEnv::new(&queue, &spec).unwrap();
            let mut b = MultiJobEnv::new(&queue, &spec).unwrap();
            let mut driver = EpisodeDriver::new(first_legal());
            let oa = driver.drive(&mut a, &mut NoRng, u64::MAX).unwrap();
            let ob = driver.drive_trusted(&mut b, &mut NoRng, u64::MAX);
            assert_eq!(oa, ob);
            assert_eq!(a.into_schedule().unwrap(), b.into_schedule().unwrap());
        }
    }

    mod fault_injection {
        use super::*;
        use crate::faults::FaultPlan;
        use crate::{ClusterError, JobQueue};

        fn flaky(fail_rate: f64, max_retries: u32) -> FaultPlan {
            FaultPlan {
                seed: 11,
                fail_rate,
                straggler_rate: 0.0,
                straggler_factor: 1.0,
                max_retries,
            }
        }

        #[test]
        fn driver_fails_fast_when_retries_are_exhausted() {
            let dag = diamond();
            let spec = ClusterSpec::unit(1);
            let mut env = SimEnv::new(&dag, &spec).unwrap().with_faults(flaky(1.0, 2));
            let mut driver = EpisodeDriver::new(first_legal());
            let err = driver.drive(&mut env, &mut NoRng, u64::MAX).unwrap_err();
            match err.root_cause() {
                SpearError::Cluster(ClusterError::RetriesExhausted { attempts, .. }) => {
                    assert_eq!(*attempts, 3); // max_retries + 1
                }
                other => panic!("expected RetriesExhausted, got {other}"),
            }
            assert!(env.is_terminal(), "a poisoned episode is terminal");
            assert_eq!(env.makespan(), None);
            // And the schedule extractor reports the same condition.
            let err = env.into_schedule().unwrap_err();
            assert!(matches!(
                err.root_cause(),
                SpearError::Cluster(ClusterError::RetriesExhausted { .. })
            ));
        }

        #[test]
        fn reset_reapplies_the_fault_plan() {
            let dag = diamond();
            let spec = ClusterSpec::unit(1);
            let plan = flaky(0.4, 8);
            let mut env = SimEnv::new(&dag, &spec).unwrap().with_faults(plan);
            let mut driver = EpisodeDriver::new(first_legal());
            driver.drive(&mut env, &mut NoRng, u64::MAX).unwrap();
            let first = env.observe().clone();
            assert!(first.fault_failures() > 0, "plan at 0.4 should bite");
            env.reset().unwrap();
            assert_eq!(env.observe().fault_plan(), Some(&plan));
            assert_eq!(env.observe().fault_failures(), 0);
            // The replayed episode is bit-identical: same seeded faults.
            driver.drive(&mut env, &mut NoRng, u64::MAX).unwrap();
            assert_eq!(env.observe().fingerprint(), first.fingerprint());
            assert_eq!(env.observe().fault_failures(), first.fault_failures());
        }

        #[test]
        fn multi_job_env_threads_faults_through_reset() {
            let job = |runtime: u64| {
                let mut b = DagBuilder::new(1);
                b.add_task(Task::new(runtime, ResourceVec::from_slice(&[0.6])));
                b.build().unwrap()
            };
            let queue = JobQueue::new(vec![(0, job(3)), (2, job(4))]).unwrap();
            let spec = ClusterSpec::unit(1);
            let plan = flaky(0.5, 6);
            let mut env = MultiJobEnv::new(&queue, &spec).unwrap().with_faults(plan);
            let mut driver = EpisodeDriver::new(first_legal());
            driver.drive(&mut env, &mut NoRng, u64::MAX).unwrap();
            let report = env.jct_report();
            assert_eq!(report.completions().len(), 2);
            env.reset().unwrap();
            assert_eq!(env.observe().fault_plan(), Some(&plan));
            driver.drive(&mut env, &mut NoRng, u64::MAX).unwrap();
            assert_eq!(env.jct_report(), report, "seeded faults replay identically");
        }

        #[cfg(feature = "obs")]
        #[test]
        fn fault_metrics_flow_into_the_obs_sink() {
            use spear_obs::MetricsRegistry;

            let dag = diamond();
            let spec = ClusterSpec::unit(1);
            let registry = MetricsRegistry::new();
            let obs = registry.sink("episode");
            let mut env = SimEnv::new(&dag, &spec).unwrap().with_faults(flaky(0.4, 8));
            let mut driver = EpisodeDriver::new(first_legal()).with_obs(&obs);
            driver.drive(&mut env, &mut NoRng, u64::MAX).unwrap();
            let snapshot = registry.snapshot();
            let failures = env.observe().fault_failures();
            assert!(failures > 0, "plan at 0.4 should bite");
            assert_eq!(
                snapshot.counter_value("sim.faults.injected"),
                Some(failures)
            );
            assert_eq!(snapshot.counter_value("sim.faults.retries"), Some(failures));
            assert_eq!(
                snapshot.histogram_count("sim.faults.reexec_latency"),
                Some(failures)
            );
        }
    }

    #[test]
    fn clone_from_reuses_env_scratch() {
        let dag = diamond();
        let spec = ClusterSpec::unit(1);
        let root = SimEnv::new(&dag, &spec).unwrap();
        let mut scratch = root.clone();
        scratch.step_trusted(Action::Schedule(TaskId::new(0)));
        scratch.clone_from(&root);
        assert_eq!(scratch.observe().start_of(TaskId::new(0)), None);
        assert_eq!(scratch.observe().clock(), 0);
    }
}
