//! Finished schedules and their validation.

use serde::{Deserialize, Serialize};
use spear_dag::{Dag, ResourceVec, TaskId, FIT_EPSILON};

use crate::{ClusterError, ClusterSpec};

/// The committed placement of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The placed task.
    pub task: TaskId,
    /// Start time slot (inclusive).
    pub start: u64,
    /// Finish time slot (exclusive): `start + runtime`.
    pub finish: u64,
}

/// A complete schedule: one [`Placement`] per task plus the makespan.
///
/// Produced by [`SimState::into_schedule`](crate::SimState::into_schedule)
/// or assembled directly. [`Schedule::validate`] checks the three
/// correctness conditions every scheduler in this repository must satisfy:
/// complete placement, precedence feasibility and capacity feasibility.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    placements: Vec<Placement>,
    makespan: u64,
}

impl Schedule {
    /// Assembles a schedule from placements (any order; they are sorted by
    /// task id internally).
    pub fn from_placements(mut placements: Vec<Placement>, makespan: u64) -> Self {
        placements.sort_by_key(|p| p.task);
        Schedule {
            placements,
            makespan,
        }
    }

    /// Placements sorted by task id.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// The placement of `task`, if present.
    pub fn placement_of(&self, task: TaskId) -> Option<&Placement> {
        self.placements
            .binary_search_by_key(&task, |p| p.task)
            .ok()
            .map(|i| &self.placements[i])
    }

    /// The time the last task finishes.
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// Average cluster utilization over the makespan: occupied
    /// resource-time area divided by total capacity × makespan, averaged
    /// over dimensions. Between 0 and 1 for a valid schedule.
    pub fn utilization(&self, dag: &Dag, spec: &ClusterSpec) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        let dims = spec.dims();
        let mut frac = 0.0;
        for r in 0..dims {
            let area: f64 = self
                .placements
                .iter()
                .map(|p| dag.task(p.task).load(r))
                .sum();
            frac += area / (spec.capacity()[r] * self.makespan as f64);
        }
        frac / dims as f64
    }

    /// Renders the schedule as an ASCII Gantt chart: one row per task
    /// (`#` = running), plus a per-slot utilization footer per resource
    /// dimension (`0`–`9` tenths of capacity). Time is downsampled to at
    /// most `max_width` columns.
    ///
    /// ```
    /// use spear_dag::{DagBuilder, Task, ResourceVec};
    /// use spear_cluster::{ClusterSpec, Schedule, Placement};
    /// # let mut b = DagBuilder::new(1);
    /// # let a = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])).with_name("map"));
    /// # let dag = b.build().unwrap();
    /// # let spec = ClusterSpec::unit(1);
    /// # let s = Schedule::from_placements(vec![Placement { task: a, start: 0, finish: 2 }], 2);
    /// let art = s.render_gantt(&dag, &spec, 40);
    /// assert!(art.contains("map"));
    /// assert!(art.contains("##"));
    /// ```
    pub fn render_gantt(&self, dag: &Dag, spec: &ClusterSpec, max_width: usize) -> String {
        use std::fmt::Write as _;
        let width = max_width.clamp(10, 400);
        let span = self.makespan.max(1);
        let slots_per_col = span.div_ceil(width as u64).max(1);
        let cols = span.div_ceil(slots_per_col) as usize;

        let label_width = dag
            .tasks()
            .iter()
            .enumerate()
            .map(|(i, t)| t.name().map_or(format!("t{i}").len(), str::len))
            .max()
            .unwrap_or(2)
            .min(16);

        let mut out = String::new();
        let _ = writeln!(
            out,
            "makespan {span} slots, {} tasks ({} slots/column)",
            dag.len(),
            slots_per_col
        );
        for p in &self.placements {
            let name = dag
                .task(p.task)
                .name()
                .map_or_else(|| p.task.to_string(), str::to_owned);
            let _ = write!(out, "{name:>label_width$} ");
            for c in 0..cols {
                let t0 = c as u64 * slots_per_col;
                let t1 = t0 + slots_per_col;
                let ch = if p.start < t1 && p.finish > t0 {
                    '#'
                } else {
                    '.'
                };
                out.push(ch);
            }
            out.push('\n');
        }
        // Utilization footer per dimension.
        for r in 0..spec.dims() {
            let _ = write!(out, "{:>label_width$} ", format!("util[{r}]"));
            for c in 0..cols {
                let t0 = c as u64 * slots_per_col;
                let mut used = 0.0;
                for p in &self.placements {
                    if p.start <= t0 && p.finish > t0 {
                        used += dag.task(p.task).demand()[r];
                    }
                }
                let tenth = ((used / spec.capacity()[r]) * 10.0).round().clamp(0.0, 9.0);
                out.push(char::from_digit(tenth as u32, 10).expect("0..=9"));
            }
            out.push('\n');
        }
        out
    }

    /// Validates the schedule against the DAG and cluster.
    ///
    /// Checks, in order:
    ///
    /// 1. every task appears exactly once with duration equal to its
    ///    runtime, and the recorded makespan equals the latest finish;
    /// 2. every task starts at or after each parent's finish;
    /// 3. at every time slot the summed demand of running tasks fits the
    ///    cluster capacity.
    ///
    /// # Errors
    ///
    /// The corresponding [`ClusterError`] variant for the first violated
    /// condition.
    pub fn validate(&self, dag: &Dag, spec: &ClusterSpec) -> Result<(), ClusterError> {
        spec.validate_dag(dag)?;
        // 1. Completeness + durations.
        let mut seen = vec![false; dag.len()];
        for p in &self.placements {
            if p.task.index() >= dag.len() || seen[p.task.index()] {
                // Duplicate or out-of-range placements make the task set
                // incomplete for some other id; report the earliest gap.
                break;
            }
            seen[p.task.index()] = true;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(ClusterError::MissingPlacement(TaskId::new(missing)));
        }
        let mut latest = 0;
        for p in &self.placements {
            if p.finish != p.start + dag.task(p.task).runtime() {
                return Err(ClusterError::WrongDuration(p.task));
            }
            latest = latest.max(p.finish);
        }
        if latest != self.makespan {
            // Report as a duration problem on the latest-finishing task.
            let worst = self
                .placements
                .iter()
                .max_by_key(|p| p.finish)
                .expect("non-empty dag has placements");
            return Err(ClusterError::WrongDuration(worst.task));
        }
        // 2. Precedence.
        for e in dag.edges() {
            let parent = self
                .placement_of(e.from)
                .expect("completeness checked above");
            let child = self.placement_of(e.to).expect("completeness checked above");
            if child.start < parent.finish {
                return Err(ClusterError::PrecedenceViolation {
                    parent: e.from,
                    child: e.to,
                });
            }
        }
        // 3. Capacity, via an event sweep over start/finish boundaries.
        let mut events: Vec<(u64, bool, TaskId)> = Vec::with_capacity(self.placements.len() * 2);
        for p in &self.placements {
            events.push((p.start, false, p.task)); // false = start
            events.push((p.finish, true, p.task)); // true = end
        }
        // Ends sort before starts at the same instant: a task may begin
        // exactly when another finishes.
        events.sort_by_key(|&(t, is_start, _)| (t, !is_start));
        let mut used = ResourceVec::zeros(spec.dims());
        for (time, is_end, task) in events {
            let demand = dag.task(task).demand();
            if is_end {
                used.saturating_sub_assign(demand);
            } else {
                used.add_assign(demand);
                if !used.fits_within(spec.capacity()) {
                    let dim = (0..spec.dims())
                        .find(|&r| used[r] > spec.capacity()[r] + FIT_EPSILON)
                        .unwrap_or(0);
                    return Err(ClusterError::CapacityViolation { time, dim });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_dag::{DagBuilder, Task};

    fn chain() -> Dag {
        let mut b = DagBuilder::new(1);
        let a = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
        let c = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.5])));
        b.add_edge(a, c).unwrap();
        b.build().unwrap()
    }

    fn spec() -> ClusterSpec {
        ClusterSpec::unit(1)
    }

    fn valid_schedule() -> Schedule {
        Schedule::from_placements(
            vec![
                Placement {
                    task: TaskId::new(0),
                    start: 0,
                    finish: 2,
                },
                Placement {
                    task: TaskId::new(1),
                    start: 2,
                    finish: 5,
                },
            ],
            5,
        )
    }

    #[test]
    fn valid_schedule_passes() {
        valid_schedule().validate(&chain(), &spec()).unwrap();
    }

    #[test]
    fn detects_missing_placement() {
        let s = Schedule::from_placements(
            vec![Placement {
                task: TaskId::new(0),
                start: 0,
                finish: 2,
            }],
            2,
        );
        assert_eq!(
            s.validate(&chain(), &spec()).unwrap_err(),
            ClusterError::MissingPlacement(TaskId::new(1))
        );
    }

    #[test]
    fn detects_wrong_duration() {
        let s = Schedule::from_placements(
            vec![
                Placement {
                    task: TaskId::new(0),
                    start: 0,
                    finish: 3, // runtime is 2
                },
                Placement {
                    task: TaskId::new(1),
                    start: 3,
                    finish: 6,
                },
            ],
            6,
        );
        assert_eq!(
            s.validate(&chain(), &spec()).unwrap_err(),
            ClusterError::WrongDuration(TaskId::new(0))
        );
    }

    #[test]
    fn detects_wrong_makespan() {
        let s = Schedule::from_placements(
            vec![
                Placement {
                    task: TaskId::new(0),
                    start: 0,
                    finish: 2,
                },
                Placement {
                    task: TaskId::new(1),
                    start: 2,
                    finish: 5,
                },
            ],
            9,
        );
        assert!(matches!(
            s.validate(&chain(), &spec()).unwrap_err(),
            ClusterError::WrongDuration(_)
        ));
    }

    #[test]
    fn detects_precedence_violation() {
        let s = Schedule::from_placements(
            vec![
                Placement {
                    task: TaskId::new(0),
                    start: 0,
                    finish: 2,
                },
                Placement {
                    task: TaskId::new(1),
                    start: 1, // starts before parent finishes
                    finish: 4,
                },
            ],
            4,
        );
        assert_eq!(
            s.validate(&chain(), &spec()).unwrap_err(),
            ClusterError::PrecedenceViolation {
                parent: TaskId::new(0),
                child: TaskId::new(1)
            }
        );
    }

    #[test]
    fn detects_capacity_violation() {
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])));
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])));
        let dag = b.build().unwrap();
        let s = Schedule::from_placements(
            vec![
                Placement {
                    task: TaskId::new(0),
                    start: 0,
                    finish: 2,
                },
                Placement {
                    task: TaskId::new(1),
                    start: 0,
                    finish: 2,
                },
            ],
            2,
        );
        assert_eq!(
            s.validate(&dag, &spec()).unwrap_err(),
            ClusterError::CapacityViolation { time: 0, dim: 0 }
        );
    }

    #[test]
    fn back_to_back_tasks_are_allowed() {
        // Start exactly at another task's finish with full capacity.
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(2, ResourceVec::from_slice(&[1.0])));
        b.add_task(Task::new(2, ResourceVec::from_slice(&[1.0])));
        let dag = b.build().unwrap();
        let s = Schedule::from_placements(
            vec![
                Placement {
                    task: TaskId::new(0),
                    start: 0,
                    finish: 2,
                },
                Placement {
                    task: TaskId::new(1),
                    start: 2,
                    finish: 4,
                },
            ],
            4,
        );
        s.validate(&dag, &spec()).unwrap();
    }

    #[test]
    fn utilization_of_serial_schedule() {
        let dag = chain();
        let s = valid_schedule();
        // Area = 2*0.5 + 3*0.5 = 2.5 over 5 slots of capacity 1 => 0.5.
        assert!((s.utilization(&dag, &spec()) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn placement_lookup() {
        let s = valid_schedule();
        assert_eq!(s.placement_of(TaskId::new(1)).unwrap().start, 2);
        assert!(s.placement_of(TaskId::new(9)).is_none());
    }
}
