//! Finished schedules and their validation.

use serde::{Deserialize, Serialize};
use spear_dag::{Dag, ResourceVec, TaskId, FIT_EPSILON};

use crate::{ClusterError, ClusterSpec};

/// The committed placement of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The placed task.
    pub task: TaskId,
    /// Start time slot (inclusive).
    pub start: u64,
    /// Finish time slot (exclusive): `start + runtime`.
    pub finish: u64,
    /// The machine the task occupies — always 0 in the single-box
    /// regime, and defaulted to 0 when deserializing pre-hetero
    /// schedules.
    #[serde(default)]
    pub machine: u32,
}

impl Placement {
    /// A single-box placement (machine 0).
    pub fn new(task: TaskId, start: u64, finish: u64) -> Self {
        Placement {
            task,
            start,
            finish,
            machine: 0,
        }
    }
}

/// A complete schedule: one [`Placement`] per task plus the makespan.
///
/// Produced by [`SimState::into_schedule`](crate::SimState::into_schedule)
/// or assembled directly. [`Schedule::validate`] checks the three
/// correctness conditions every scheduler in this repository must satisfy:
/// complete placement, precedence feasibility and capacity feasibility.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    placements: Vec<Placement>,
    makespan: u64,
}

impl Schedule {
    /// Assembles a schedule from placements (any order; they are sorted by
    /// task id internally).
    pub fn from_placements(mut placements: Vec<Placement>, makespan: u64) -> Self {
        placements.sort_by_key(|p| p.task);
        Schedule {
            placements,
            makespan,
        }
    }

    /// Placements sorted by task id.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// The placement of `task`, if present.
    pub fn placement_of(&self, task: TaskId) -> Option<&Placement> {
        self.placements
            .binary_search_by_key(&task, |p| p.task)
            .ok()
            .map(|i| &self.placements[i])
    }

    /// The time the last task finishes.
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// Average cluster utilization over the makespan: occupied
    /// resource-time area divided by total capacity × makespan, averaged
    /// over dimensions. Between 0 and 1 for a valid schedule.
    pub fn utilization(&self, dag: &Dag, spec: &ClusterSpec) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        let dims = spec.dims();
        let mut frac = 0.0;
        for r in 0..dims {
            let area: f64 = self
                .placements
                .iter()
                .map(|p| dag.task(p.task).load(r))
                .sum();
            frac += area / (spec.capacity()[r] * self.makespan as f64);
        }
        frac / dims as f64
    }

    /// Renders the schedule as an ASCII Gantt chart: one row per task
    /// (`#` = running), plus a per-slot utilization footer per resource
    /// dimension (`0`–`9` tenths of capacity). Time is downsampled to at
    /// most `max_width` columns.
    ///
    /// ```
    /// use spear_dag::{DagBuilder, Task, ResourceVec};
    /// use spear_cluster::{ClusterSpec, Schedule, Placement};
    /// # let mut b = DagBuilder::new(1);
    /// # let a = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])).with_name("map"));
    /// # let dag = b.build().unwrap();
    /// # let spec = ClusterSpec::unit(1);
    /// # let s = Schedule::from_placements(vec![Placement::new(a, 0, 2)], 2);
    /// let art = s.render_gantt(&dag, &spec, 40);
    /// assert!(art.contains("map"));
    /// assert!(art.contains("##"));
    /// ```
    pub fn render_gantt(&self, dag: &Dag, spec: &ClusterSpec, max_width: usize) -> String {
        use std::fmt::Write as _;
        let width = max_width.clamp(10, 400);
        let span = self.makespan.max(1);
        let slots_per_col = span.div_ceil(width as u64).max(1);
        let cols = span.div_ceil(slots_per_col) as usize;

        let label_width = dag
            .tasks()
            .iter()
            .enumerate()
            .map(|(i, t)| t.name().map_or(format!("t{i}").len(), str::len))
            .max()
            .unwrap_or(2)
            .min(16);

        let mut out = String::new();
        let _ = writeln!(
            out,
            "makespan {span} slots, {} tasks ({} slots/column)",
            dag.len(),
            slots_per_col
        );
        for p in &self.placements {
            let name = dag
                .task(p.task)
                .name()
                .map_or_else(|| p.task.to_string(), str::to_owned);
            let _ = write!(out, "{name:>label_width$} ");
            for c in 0..cols {
                let t0 = c as u64 * slots_per_col;
                let t1 = t0 + slots_per_col;
                let ch = if p.start < t1 && p.finish > t0 {
                    '#'
                } else {
                    '.'
                };
                out.push(ch);
            }
            out.push('\n');
        }
        // Utilization footer per dimension.
        for r in 0..spec.dims() {
            let _ = write!(out, "{:>label_width$} ", format!("util[{r}]"));
            for c in 0..cols {
                let t0 = c as u64 * slots_per_col;
                let mut used = 0.0;
                for p in &self.placements {
                    if p.start <= t0 && p.finish > t0 {
                        used += dag.task(p.task).demand()[r];
                    }
                }
                let tenth = ((used / spec.capacity()[r]) * 10.0).round().clamp(0.0, 9.0);
                out.push(char::from_digit(tenth as u32, 10).expect("0..=9"));
            }
            out.push('\n');
        }
        out
    }

    /// Validates the schedule against the DAG and cluster.
    ///
    /// Checks, in order:
    ///
    /// 1. every task appears exactly once with duration equal to its
    ///    runtime, and the recorded makespan equals the latest finish;
    /// 2. every placement names an in-range machine (machine 0 in the
    ///    single-box regime);
    /// 3. every task starts at or after each parent's finish — plus, on
    ///    a heterogeneous cluster, the transfer delay of the edge when
    ///    parent and child ran on different machines (re-derived here
    ///    from the [`MachineSet`](crate::MachineSet) alone, independent
    ///    of the simulator);
    /// 4. at every time slot the summed demand of running tasks fits the
    ///    aggregate cluster capacity — and each machine's individual
    ///    capacity on a heterogeneous cluster.
    ///
    /// # Errors
    ///
    /// The corresponding [`ClusterError`] variant for the first violated
    /// condition.
    pub fn validate(&self, dag: &Dag, spec: &ClusterSpec) -> Result<(), ClusterError> {
        spec.validate_dag(dag)?;
        // 1. Completeness + durations.
        let mut seen = vec![false; dag.len()];
        for p in &self.placements {
            if p.task.index() >= dag.len() || seen[p.task.index()] {
                // Duplicate or out-of-range placements make the task set
                // incomplete for some other id; report the earliest gap.
                break;
            }
            seen[p.task.index()] = true;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(ClusterError::MissingPlacement(TaskId::new(missing)));
        }
        let mut latest = 0;
        for p in &self.placements {
            if p.finish != p.start + dag.task(p.task).runtime() {
                return Err(ClusterError::WrongDuration(p.task));
            }
            latest = latest.max(p.finish);
        }
        if latest != self.makespan {
            // Report as a duration problem on the latest-finishing task.
            let worst = self
                .placements
                .iter()
                .max_by_key(|p| p.finish)
                .expect("non-empty dag has placements");
            return Err(ClusterError::WrongDuration(worst.task));
        }
        // 2. Machine indices. The single-box regime has exactly one
        // machine, so any nonzero index is out of range.
        let machines = spec.machines();
        let num_machines = machines.map_or(1, |m| m.len()) as u32;
        for p in &self.placements {
            if p.machine >= num_machines {
                return Err(ClusterError::MachineOutOfRange {
                    task: p.task,
                    machine: p.machine,
                });
            }
        }
        // 3. Precedence + transfer gating.
        for e in dag.edges() {
            let parent = self
                .placement_of(e.from)
                .expect("completeness checked above");
            let child = self.placement_of(e.to).expect("completeness checked above");
            if child.start < parent.finish {
                return Err(ClusterError::PrecedenceViolation {
                    parent: e.from,
                    child: e.to,
                });
            }
            if let Some(m) = machines {
                let delay =
                    m.edge_delay(e.from.index(), e.to.index(), parent.machine, child.machine);
                if child.start < parent.finish + delay {
                    return Err(ClusterError::TransferViolation {
                        parent: e.from,
                        child: e.to,
                    });
                }
            }
        }
        // 4. Capacity, via an event sweep over start/finish boundaries.
        let mut events: Vec<(u64, bool, TaskId)> = Vec::with_capacity(self.placements.len() * 2);
        for p in &self.placements {
            events.push((p.start, false, p.task)); // false = start
            events.push((p.finish, true, p.task)); // true = end
        }
        // Ends sort before starts at the same instant: a task may begin
        // exactly when another finishes.
        events.sort_by_key(|&(t, is_start, _)| (t, !is_start));
        let mut used = ResourceVec::zeros(spec.dims());
        for &(time, is_end, task) in &events {
            let demand = dag.task(task).demand();
            if is_end {
                used.saturating_sub_assign(demand);
            } else {
                used.add_assign(demand);
                if !used.fits_within(spec.capacity()) {
                    let dim = (0..spec.dims())
                        .find(|&r| used[r] > spec.capacity()[r] + FIT_EPSILON)
                        .unwrap_or(0);
                    return Err(ClusterError::CapacityViolation { time, dim });
                }
            }
        }
        // Per-machine sweeps: the same arithmetic against each machine's
        // own capacity, restricted to its placements.
        if let Some(m) = machines {
            for machine in 0..num_machines {
                let cap = m.capacity(machine);
                let mut used = ResourceVec::zeros(spec.dims());
                for &(time, is_end, task) in &events {
                    if self
                        .placement_of(task)
                        .expect("completeness checked above")
                        .machine
                        != machine
                    {
                        continue;
                    }
                    let demand = dag.task(task).demand();
                    if is_end {
                        used.saturating_sub_assign(demand);
                    } else {
                        used.add_assign(demand);
                        if !used.fits_within(cap) {
                            let dim = (0..spec.dims())
                                .find(|&r| used[r] > cap[r] + FIT_EPSILON)
                                .unwrap_or(0);
                            return Err(ClusterError::MachineCapacityViolation {
                                machine,
                                time,
                                dim,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_dag::{DagBuilder, Task};

    fn chain() -> Dag {
        let mut b = DagBuilder::new(1);
        let a = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
        let c = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.5])));
        b.add_edge(a, c).unwrap();
        b.build().unwrap()
    }

    fn spec() -> ClusterSpec {
        ClusterSpec::unit(1)
    }

    fn valid_schedule() -> Schedule {
        Schedule::from_placements(
            vec![
                Placement::new(TaskId::new(0), 0, 2),
                Placement::new(TaskId::new(1), 2, 5),
            ],
            5,
        )
    }

    #[test]
    fn valid_schedule_passes() {
        valid_schedule().validate(&chain(), &spec()).unwrap();
    }

    #[test]
    fn detects_missing_placement() {
        let s = Schedule::from_placements(vec![Placement::new(TaskId::new(0), 0, 2)], 2);
        assert_eq!(
            s.validate(&chain(), &spec()).unwrap_err(),
            ClusterError::MissingPlacement(TaskId::new(1))
        );
    }

    #[test]
    fn detects_wrong_duration() {
        let s = Schedule::from_placements(
            vec![
                Placement::new(TaskId::new(0), 0, 3), // runtime is 2
                Placement::new(TaskId::new(1), 3, 6),
            ],
            6,
        );
        assert_eq!(
            s.validate(&chain(), &spec()).unwrap_err(),
            ClusterError::WrongDuration(TaskId::new(0))
        );
    }

    #[test]
    fn detects_wrong_makespan() {
        let s = Schedule::from_placements(
            vec![
                Placement::new(TaskId::new(0), 0, 2),
                Placement::new(TaskId::new(1), 2, 5),
            ],
            9,
        );
        assert!(matches!(
            s.validate(&chain(), &spec()).unwrap_err(),
            ClusterError::WrongDuration(_)
        ));
    }

    #[test]
    fn detects_precedence_violation() {
        let s = Schedule::from_placements(
            vec![
                Placement::new(TaskId::new(0), 0, 2),
                // Starts before the parent finishes.
                Placement::new(TaskId::new(1), 1, 4),
            ],
            4,
        );
        assert_eq!(
            s.validate(&chain(), &spec()).unwrap_err(),
            ClusterError::PrecedenceViolation {
                parent: TaskId::new(0),
                child: TaskId::new(1)
            }
        );
    }

    #[test]
    fn detects_capacity_violation() {
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])));
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])));
        let dag = b.build().unwrap();
        let s = Schedule::from_placements(
            vec![
                Placement::new(TaskId::new(0), 0, 2),
                Placement::new(TaskId::new(1), 0, 2),
            ],
            2,
        );
        assert_eq!(
            s.validate(&dag, &spec()).unwrap_err(),
            ClusterError::CapacityViolation { time: 0, dim: 0 }
        );
    }

    #[test]
    fn back_to_back_tasks_are_allowed() {
        // Start exactly at another task's finish with full capacity.
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(2, ResourceVec::from_slice(&[1.0])));
        b.add_task(Task::new(2, ResourceVec::from_slice(&[1.0])));
        let dag = b.build().unwrap();
        let s = Schedule::from_placements(
            vec![
                Placement::new(TaskId::new(0), 0, 2),
                Placement::new(TaskId::new(1), 2, 4),
            ],
            4,
        );
        s.validate(&dag, &spec()).unwrap();
    }

    #[test]
    fn utilization_of_serial_schedule() {
        let dag = chain();
        let s = valid_schedule();
        // Area = 2*0.5 + 3*0.5 = 2.5 over 5 slots of capacity 1 => 0.5.
        assert!((s.utilization(&dag, &spec()) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn placement_lookup() {
        let s = valid_schedule();
        assert_eq!(s.placement_of(TaskId::new(1)).unwrap().start, 2);
        assert!(s.placement_of(TaskId::new(9)).is_none());
    }

    /// Two unit machines, bandwidth 1, `max_edge_bytes` 1: every
    /// cross-machine edge costs exactly one transfer slot.
    fn two_machine_spec() -> ClusterSpec {
        use crate::{MachineSet, TransferMode};
        let machines = MachineSet::uniform(
            2,
            ResourceVec::from_slice(&[1.0]),
            1,
            TransferMode::Direct,
            0,
            1,
        )
        .unwrap();
        ClusterSpec::hetero(machines).unwrap()
    }

    fn placed(task: usize, start: u64, finish: u64, machine: u32) -> Placement {
        let mut p = Placement::new(TaskId::new(task), start, finish);
        p.machine = machine;
        p
    }

    #[test]
    fn detects_machine_out_of_range() {
        let s = Schedule::from_placements(vec![placed(0, 0, 2, 0), placed(1, 3, 6, 2)], 6);
        assert_eq!(
            s.validate(&chain(), &two_machine_spec()).unwrap_err(),
            ClusterError::MachineOutOfRange {
                task: TaskId::new(1),
                machine: 2
            }
        );
        // The single-box regime has exactly one machine, so even
        // machine 1 is out of range there.
        let s = Schedule::from_placements(vec![placed(0, 0, 2, 0), placed(1, 2, 5, 1)], 5);
        assert_eq!(
            s.validate(&chain(), &spec()).unwrap_err(),
            ClusterError::MachineOutOfRange {
                task: TaskId::new(1),
                machine: 1
            }
        );
    }

    #[test]
    fn detects_transfer_violation_across_machines() {
        let spec = two_machine_spec();
        // Child starts at the parent's finish: legal on one machine,
        // one slot too early across the cross-machine link.
        let s = Schedule::from_placements(vec![placed(0, 0, 2, 0), placed(1, 2, 5, 1)], 5);
        assert_eq!(
            s.validate(&chain(), &spec).unwrap_err(),
            ClusterError::TransferViolation {
                parent: TaskId::new(0),
                child: TaskId::new(1)
            }
        );
        // Waiting out the transfer slot makes it valid...
        let s = Schedule::from_placements(vec![placed(0, 0, 2, 0), placed(1, 3, 6, 1)], 6);
        s.validate(&chain(), &spec).unwrap();
        // ...and co-located parent/child never pay a delay.
        let s = Schedule::from_placements(vec![placed(0, 0, 2, 1), placed(1, 2, 5, 1)], 5);
        s.validate(&chain(), &spec).unwrap();
    }

    #[test]
    fn detects_per_machine_capacity_violation() {
        // Two 0.6 tasks overlap on machine 0: they fit the 2.0 aggregate
        // but overfill that machine's own 1.0 capacity.
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])));
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])));
        let dag = b.build().unwrap();
        let s = Schedule::from_placements(vec![placed(0, 0, 2, 0), placed(1, 0, 2, 0)], 2);
        assert_eq!(
            s.validate(&dag, &two_machine_spec()).unwrap_err(),
            ClusterError::MachineCapacityViolation {
                machine: 0,
                time: 0,
                dim: 0
            }
        );
        // Spreading them across machines resolves the overload.
        let s = Schedule::from_placements(vec![placed(0, 0, 2, 0), placed(1, 0, 2, 1)], 2);
        s.validate(&dag, &two_machine_spec()).unwrap();
    }
}
