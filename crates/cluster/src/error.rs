//! Error types for the simulator and the workspace-wide [`SpearError`].

use std::error::Error;
use std::fmt;

use spear_dag::stg::StgError;
use spear_dag::{DagError, TaskId};

use crate::audit::AuditViolation;

/// Errors from cluster construction, simulation steps and schedule
/// validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The capacity vector has a non-positive or non-finite component.
    InvalidCapacity,
    /// A task demands more than the total cluster capacity in some
    /// dimension; it can never be scheduled.
    TaskExceedsCapacity(TaskId),
    /// The DAG and the cluster disagree on resource dimensionality.
    DimensionMismatch {
        /// Dimensions of the cluster capacity vector.
        cluster: usize,
        /// Dimensions of the DAG's task demands.
        dag: usize,
    },
    /// `Schedule(t)` was applied but `t` is not in the ready set.
    TaskNotReady(TaskId),
    /// `Schedule(t)` was applied but `t`'s demand exceeds the free capacity.
    InsufficientResources(TaskId),
    /// `Process` was applied with an empty cluster (nothing can finish, so
    /// time would never advance).
    NothingRunning,
    /// An action was applied to a terminal state.
    SimulationFinished,
    /// Schedule validation: a task was never placed.
    MissingPlacement(TaskId),
    /// Schedule validation: a placement's duration disagrees with the task
    /// runtime.
    WrongDuration(TaskId),
    /// Schedule validation: a task starts before one of its parents ends.
    PrecedenceViolation {
        /// The parent task.
        parent: TaskId,
        /// The child that started too early.
        child: TaskId,
    },
    /// Schedule validation: total demand exceeds capacity at some time slot.
    CapacityViolation {
        /// The earliest offending time slot.
        time: u64,
        /// The offending resource dimension.
        dim: usize,
    },
    /// Fault injection: a task failed every attempt its retry budget
    /// allowed, poisoning the episode (it can never complete).
    RetriesExhausted {
        /// The task that ran out of retries.
        task: TaskId,
        /// Attempts it burned (`max_retries + 1`).
        attempts: u32,
    },
    /// A machine set's bandwidth matrix is malformed: wrong size, a zero
    /// entry, or a zero `max_edge_bytes`.
    InvalidBandwidth,
    /// A placement names a machine index outside the cluster's machine
    /// set.
    MachineOutOfRange {
        /// The placed task.
        task: TaskId,
        /// The out-of-range machine index.
        machine: u32,
    },
    /// `Schedule(t)` was applied to a heterogeneous cluster, where every
    /// placement must name a machine (`Action::Place`).
    MachineRequired(TaskId),
    /// A task was placed before the data transfer from some
    /// differently-located parent completed.
    TransferViolation {
        /// The parent whose output was still in flight.
        parent: TaskId,
        /// The task that started too early.
        child: TaskId,
    },
    /// Schedule validation: a machine's individual capacity is exceeded
    /// at some time slot.
    MachineCapacityViolation {
        /// The offending machine.
        machine: u32,
        /// The earliest offending time slot.
        time: u64,
        /// The offending resource dimension.
        dim: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidCapacity => {
                write!(f, "cluster capacity must be positive and finite")
            }
            ClusterError::TaskExceedsCapacity(t) => {
                write!(f, "task {t} demands more than the total cluster capacity")
            }
            ClusterError::DimensionMismatch { cluster, dag } => write!(
                f,
                "cluster has {cluster} resource dimensions but the dag has {dag}"
            ),
            ClusterError::TaskNotReady(t) => write!(f, "task {t} is not ready"),
            ClusterError::InsufficientResources(t) => {
                write!(f, "task {t} does not fit in the free capacity")
            }
            ClusterError::NothingRunning => {
                write!(f, "cannot process an empty cluster")
            }
            ClusterError::SimulationFinished => {
                write!(f, "simulation already reached the terminal state")
            }
            ClusterError::MissingPlacement(t) => write!(f, "task {t} was never placed"),
            ClusterError::WrongDuration(t) => {
                write!(f, "placement duration of task {t} differs from its runtime")
            }
            ClusterError::PrecedenceViolation { parent, child } => {
                write!(f, "task {child} starts before its parent {parent} finishes")
            }
            ClusterError::CapacityViolation { time, dim } => write!(
                f,
                "capacity of dimension {dim} exceeded at time slot {time}"
            ),
            ClusterError::RetriesExhausted { task, attempts } => write!(
                f,
                "task {task} failed all {attempts} execution attempts; retry budget exhausted"
            ),
            ClusterError::InvalidBandwidth => {
                write!(f, "bandwidth matrix must be n*n with positive entries")
            }
            ClusterError::MachineOutOfRange { task, machine } => {
                write!(f, "task {task} names machine {machine} outside the cluster")
            }
            ClusterError::MachineRequired(t) => write!(
                f,
                "task {t} must be placed on a named machine of a heterogeneous cluster"
            ),
            ClusterError::TransferViolation { parent, child } => write!(
                f,
                "task {child} starts before the data transfer from parent {parent} completes"
            ),
            ClusterError::MachineCapacityViolation { machine, time, dim } => write!(
                f,
                "machine {machine} capacity of dimension {dim} exceeded at time slot {time}"
            ),
        }
    }
}

impl Error for ClusterError {}

/// The workspace-wide error type: every fallible scheduling, simulation or
/// parsing path funnels into one of these variants, so callers match on a
/// single enum instead of juggling per-crate error types.
///
/// The [`Context`](SpearError::Context) variant attaches a human-readable
/// breadcrumb (which job, which file, which phase) on the way up; build it
/// with [`ErrorContext::context`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpearError {
    /// A simulator or schedule-validation error.
    Cluster(ClusterError),
    /// A DAG construction or validation error.
    Dag(DagError),
    /// An STG workload-file parse error.
    Stg(StgError),
    /// An episode ended (or was read) before reaching the terminal state,
    /// e.g. asking a truncated driver run for a complete schedule.
    IncompleteEpisode,
    /// The invariant auditor found the simulation state internally
    /// inconsistent (see [`AuditViolation`]).
    Audit(AuditViolation),
    /// A wrapped error with a human-readable breadcrumb.
    Context {
        /// What the failing operation was doing.
        context: String,
        /// The underlying error.
        source: Box<SpearError>,
    },
}

impl SpearError {
    /// Wraps the error with a breadcrumb describing the failing operation.
    #[must_use]
    pub fn context(self, context: impl Into<String>) -> SpearError {
        SpearError::Context {
            context: context.into(),
            source: Box::new(self),
        }
    }

    /// The innermost error, unwrapping any [`Context`](SpearError::Context)
    /// layers.
    pub fn root_cause(&self) -> &SpearError {
        match self {
            SpearError::Context { source, .. } => source.root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for SpearError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpearError::Cluster(e) => write!(f, "{e}"),
            SpearError::Dag(e) => write!(f, "{e}"),
            SpearError::Stg(e) => write!(f, "{e}"),
            SpearError::IncompleteEpisode => {
                write!(f, "episode ended before reaching the terminal state")
            }
            SpearError::Audit(v) => write!(f, "invariant audit failed: {v}"),
            SpearError::Context { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl Error for SpearError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpearError::Cluster(e) => Some(e),
            SpearError::Dag(e) => Some(e),
            SpearError::Stg(e) => Some(e),
            SpearError::IncompleteEpisode => None,
            SpearError::Audit(v) => Some(v),
            SpearError::Context { source, .. } => Some(source.as_ref()),
        }
    }
}

impl From<ClusterError> for SpearError {
    fn from(e: ClusterError) -> Self {
        SpearError::Cluster(e)
    }
}

impl From<DagError> for SpearError {
    fn from(e: DagError) -> Self {
        SpearError::Dag(e)
    }
}

impl From<StgError> for SpearError {
    fn from(e: StgError) -> Self {
        SpearError::Stg(e)
    }
}

impl From<AuditViolation> for SpearError {
    fn from(v: AuditViolation) -> Self {
        SpearError::Audit(v)
    }
}

/// Extension trait adding [`SpearError::context`] breadcrumbs to any
/// `Result` whose error converts into [`SpearError`].
///
/// ```
/// use spear_cluster::{ClusterError, ErrorContext, SpearError};
///
/// let r: Result<(), ClusterError> = Err(ClusterError::NothingRunning);
/// let e = r.context("processing job 7").unwrap_err();
/// assert!(e.to_string().starts_with("processing job 7:"));
/// assert_eq!(e.root_cause(), &SpearError::Cluster(ClusterError::NothingRunning));
/// ```
pub trait ErrorContext<T> {
    /// Converts the error into [`SpearError`] and attaches `context`.
    fn context(self, context: impl Into<String>) -> Result<T, SpearError>;

    /// Like [`ErrorContext::context`] but builds the breadcrumb lazily —
    /// use when formatting it is not free.
    fn with_context<C: Into<String>, F: FnOnce() -> C>(self, f: F) -> Result<T, SpearError>;
}

impl<T, E: Into<SpearError>> ErrorContext<T> for Result<T, E> {
    fn context(self, context: impl Into<String>) -> Result<T, SpearError> {
        self.map_err(|e| e.into().context(context))
    }

    fn with_context<C: Into<String>, F: FnOnce() -> C>(self, f: F) -> Result<T, SpearError> {
        self.map_err(|e| e.into().context(f()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        let errors = [
            ClusterError::InvalidCapacity,
            ClusterError::TaskExceedsCapacity(TaskId::new(0)),
            ClusterError::DimensionMismatch { cluster: 1, dag: 2 },
            ClusterError::TaskNotReady(TaskId::new(1)),
            ClusterError::InsufficientResources(TaskId::new(2)),
            ClusterError::NothingRunning,
            ClusterError::SimulationFinished,
            ClusterError::MissingPlacement(TaskId::new(3)),
            ClusterError::WrongDuration(TaskId::new(4)),
            ClusterError::PrecedenceViolation {
                parent: TaskId::new(0),
                child: TaskId::new(1),
            },
            ClusterError::CapacityViolation { time: 9, dim: 1 },
            ClusterError::RetriesExhausted {
                task: TaskId::new(5),
                attempts: 4,
            },
            ClusterError::InvalidBandwidth,
            ClusterError::MachineOutOfRange {
                task: TaskId::new(6),
                machine: 3,
            },
            ClusterError::MachineRequired(TaskId::new(7)),
            ClusterError::TransferViolation {
                parent: TaskId::new(0),
                child: TaskId::new(1),
            },
            ClusterError::MachineCapacityViolation {
                machine: 1,
                time: 4,
                dim: 0,
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClusterError>();
        assert_send_sync::<SpearError>();
    }

    #[test]
    fn spear_error_wraps_and_displays_sources() {
        let e: SpearError = ClusterError::NothingRunning.into();
        assert_eq!(e.to_string(), ClusterError::NothingRunning.to_string());
        assert!(e.source().is_some());
        let d: SpearError = DagError::Cycle.into();
        assert_eq!(d.to_string(), DagError::Cycle.to_string());
        let s: SpearError = StgError::MissingHeader.into();
        assert_eq!(s.to_string(), StgError::MissingHeader.to_string());
        assert!(!SpearError::IncompleteEpisode.to_string().is_empty());
    }

    #[test]
    fn context_chains_and_root_cause_unwraps() {
        let r: Result<(), ClusterError> = Err(ClusterError::SimulationFinished);
        let e = r
            .context("stepping the episode")
            .with_context(|| format!("scheduling job {}", 3))
            .unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("scheduling job 3"));
        assert!(msg.contains("stepping the episode"));
        assert!(msg.contains("terminal state"));
        assert_eq!(
            e.root_cause(),
            &SpearError::Cluster(ClusterError::SimulationFinished)
        );
        // `source()` walks the same chain std-style.
        let mut depth = 0;
        let mut cur: &dyn Error = &e;
        while let Some(next) = cur.source() {
            depth += 1;
            cur = next;
        }
        assert_eq!(depth, 3); // two context layers + the ClusterError leaf
    }
}
