//! Error types for the simulator.

use std::error::Error;
use std::fmt;

use spear_dag::TaskId;

/// Errors from cluster construction, simulation steps and schedule
/// validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The capacity vector has a non-positive or non-finite component.
    InvalidCapacity,
    /// A task demands more than the total cluster capacity in some
    /// dimension; it can never be scheduled.
    TaskExceedsCapacity(TaskId),
    /// The DAG and the cluster disagree on resource dimensionality.
    DimensionMismatch {
        /// Dimensions of the cluster capacity vector.
        cluster: usize,
        /// Dimensions of the DAG's task demands.
        dag: usize,
    },
    /// `Schedule(t)` was applied but `t` is not in the ready set.
    TaskNotReady(TaskId),
    /// `Schedule(t)` was applied but `t`'s demand exceeds the free capacity.
    InsufficientResources(TaskId),
    /// `Process` was applied with an empty cluster (nothing can finish, so
    /// time would never advance).
    NothingRunning,
    /// An action was applied to a terminal state.
    SimulationFinished,
    /// Schedule validation: a task was never placed.
    MissingPlacement(TaskId),
    /// Schedule validation: a placement's duration disagrees with the task
    /// runtime.
    WrongDuration(TaskId),
    /// Schedule validation: a task starts before one of its parents ends.
    PrecedenceViolation {
        /// The parent task.
        parent: TaskId,
        /// The child that started too early.
        child: TaskId,
    },
    /// Schedule validation: total demand exceeds capacity at some time slot.
    CapacityViolation {
        /// The earliest offending time slot.
        time: u64,
        /// The offending resource dimension.
        dim: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidCapacity => {
                write!(f, "cluster capacity must be positive and finite")
            }
            ClusterError::TaskExceedsCapacity(t) => {
                write!(f, "task {t} demands more than the total cluster capacity")
            }
            ClusterError::DimensionMismatch { cluster, dag } => write!(
                f,
                "cluster has {cluster} resource dimensions but the dag has {dag}"
            ),
            ClusterError::TaskNotReady(t) => write!(f, "task {t} is not ready"),
            ClusterError::InsufficientResources(t) => {
                write!(f, "task {t} does not fit in the free capacity")
            }
            ClusterError::NothingRunning => {
                write!(f, "cannot process an empty cluster")
            }
            ClusterError::SimulationFinished => {
                write!(f, "simulation already reached the terminal state")
            }
            ClusterError::MissingPlacement(t) => write!(f, "task {t} was never placed"),
            ClusterError::WrongDuration(t) => {
                write!(f, "placement duration of task {t} differs from its runtime")
            }
            ClusterError::PrecedenceViolation { parent, child } => {
                write!(f, "task {child} starts before its parent {parent} finishes")
            }
            ClusterError::CapacityViolation { time, dim } => write!(
                f,
                "capacity of dimension {dim} exceeded at time slot {time}"
            ),
        }
    }
}

impl Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        let errors = [
            ClusterError::InvalidCapacity,
            ClusterError::TaskExceedsCapacity(TaskId::new(0)),
            ClusterError::DimensionMismatch { cluster: 1, dag: 2 },
            ClusterError::TaskNotReady(TaskId::new(1)),
            ClusterError::InsufficientResources(TaskId::new(2)),
            ClusterError::NothingRunning,
            ClusterError::SimulationFinished,
            ClusterError::MissingPlacement(TaskId::new(3)),
            ClusterError::WrongDuration(TaskId::new(4)),
            ClusterError::PrecedenceViolation {
                parent: TaskId::new(0),
                child: TaskId::new(1),
            },
            ClusterError::CapacityViolation { time: 9, dim: 1 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClusterError>();
    }
}
