//! Seeded fault injection: deterministic task failures, stragglers and
//! bounded re-execution.
//!
//! The fault model follows the open-cluster evaluations of Decima and
//! Graphene: schedulers plan against the *fault-free projected DAG* —
//! their view of runtimes is never corrupted — and faults bite at
//! execution time. A [`FaultPlan`] maps every `(task, attempt)` pair to a
//! [`FaultOutcome`] by pure seeded hashing, so fault realizations are a
//! deterministic function of `(plan, task, attempt)` with no RNG stream
//! to keep aligned: replaying the same plan over the same dispatch order
//! reproduces the run bit for bit, and two schedulers compared under the
//! same plan face identical per-attempt luck.
//!
//! Three outcomes exist per attempt:
//!
//! * **Failure** — the attempt aborts after a seeded fraction of its
//!   runtime. The simulator frees the task's resources at the failure
//!   slot and re-queues it (dependencies are untouched: a failed task
//!   never completed, so its children were never released).
//! * **Straggle** — the attempt runs to completion but occupies the
//!   cluster for `ceil(runtime * straggler_factor)` slots.
//! * **None** — the attempt behaves exactly as planned.
//!
//! Retries are bounded: once a task has failed `max_retries + 1`
//! attempts the episode is poisoned and fails fast with
//! [`ClusterError::RetriesExhausted`].
//!
//! [`execute_under_faults`] replays a fault-free planned [`Schedule`]
//! under a plan with greedy priority dispatch (planned `(start, task)`
//! order), returning the realized [`FaultyRun`];
//! [`execute_multi_under_faults`] is the multi-job, horizon-aware
//! variant.

use serde::{Deserialize, Serialize};
use spear_dag::{Dag, TaskId};

use crate::audit::InvariantAuditor;
use crate::jobs::{JctReport, JobQueue};
use crate::state::mix64;
use crate::{Action, ClusterError, ClusterSpec, Placement, Schedule, SimState, SpearError};

/// Hash-domain salt of the fail/no-fail draw.
const SALT_FAIL: u64 = 0x1fd3_4c2b_9a6e_8d17;
/// Hash-domain salt of the failure-point draw (fraction of runtime).
const SALT_POINT: u64 = 0x6b79_0b5c_2d84_f3a1;
/// Hash-domain salt of the straggle/no-straggle draw.
const SALT_STRAGGLE: u64 = 0xb4e5_d621_7f38_0c95;
/// Hash-domain salt of the per-(task, attempts) fingerprint keys.
const SALT_ATTEMPT: u64 = 0x94c1_73ae_55d9_216b;

/// Uniform draw in `[0, 1)` from the top 53 bits of a mixed hash.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Zobrist-style key of one task's attempt counter, XOR-folded into the
/// state fingerprints so two states that differ only in retry history
/// (and therefore in future fault outcomes) never alias. Zero attempts
/// key to zero, keeping fresh fault states' hash at 0.
#[inline]
pub(crate) fn attempt_key(task: usize, attempts: u32) -> u64 {
    if attempts == 0 {
        return 0;
    }
    mix64(
        (task as u64).wrapping_mul(0x2545_f491_4f6c_dd1d)
            ^ u64::from(attempts).wrapping_mul(0xff51_afd7_ed55_8ccd)
            ^ SALT_ATTEMPT,
    )
}

/// What fault (if any) a given execution attempt of a task suffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The attempt runs exactly as planned.
    None,
    /// The attempt aborts `after` slots of occupancy (`1 <= after <=
    /// runtime`): resources are freed at `start + after` and the task
    /// re-queues.
    Fail {
        /// Slots the failed attempt occupies before aborting.
        after: u64,
    },
    /// The attempt completes but occupies the cluster for `slots >
    /// runtime` slots.
    Straggle {
        /// Total slots the straggling attempt occupies.
        slots: u64,
    },
}

/// A deterministic, seeded fault realization: maps every `(task,
/// attempt)` pair to a [`FaultOutcome`] by pure hashing.
///
/// `FaultPlan::none()` is the identity plan — a simulator carrying it is
/// bit-identical to one carrying no plan at all (see
/// [`SimState::with_faults`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the per-(task, attempt) hash draws.
    pub seed: u64,
    /// Probability that an attempt fails mid-run, in `[0, 1]`.
    pub fail_rate: f64,
    /// Probability that a non-failing attempt straggles, in `[0, 1]`.
    pub straggler_rate: f64,
    /// Occupancy multiplier of a straggling attempt (`> 1` to have any
    /// effect); the realized occupancy is `ceil(runtime * factor)`.
    pub straggler_factor: f64,
    /// Failed attempts a task may accumulate beyond its first attempt
    /// before the episode fails fast ([`ClusterError::RetriesExhausted`]).
    pub max_retries: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The identity plan: no failures, no stragglers.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            fail_rate: 0.0,
            straggler_rate: 0.0,
            straggler_factor: 1.0,
            max_retries: 0,
        }
    }

    /// `true` when the plan can never perturb an execution.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.fail_rate <= 0.0 && (self.straggler_rate <= 0.0 || self.straggler_factor <= 1.0)
    }

    /// Maximum execution attempts per task (`max_retries + 1`).
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        self.max_retries.saturating_add(1)
    }

    /// One seeded uniform draw in `[0, 1)` per `(task, attempt, salt)`.
    #[inline]
    fn draw(&self, task: TaskId, attempt: u32, salt: u64) -> f64 {
        unit(mix64(
            self.seed
                ^ (task.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ u64::from(attempt).wrapping_mul(0xc4ce_b9fe_1a85_ec53)
                ^ salt,
        ))
    }

    /// The fault outcome of execution attempt `attempt` (0-based) of
    /// `task`, whose fault-free runtime is `runtime`. Pure: the same
    /// arguments always yield the same outcome. Failure is drawn first
    /// and excludes straggling; zero-runtime tasks never fault (there is
    /// nothing to interrupt or stretch).
    #[must_use]
    pub fn outcome(&self, task: TaskId, attempt: u32, runtime: u64) -> FaultOutcome {
        if self.is_none() || runtime == 0 {
            return FaultOutcome::None;
        }
        if self.fail_rate > 0.0 && self.draw(task, attempt, SALT_FAIL) < self.fail_rate {
            // Failure point at a seeded fraction of the runtime, clamped
            // into [1, runtime] so a failed attempt always occupies at
            // least one slot and never outlives its fault-free finish.
            let frac = self.draw(task, attempt, SALT_POINT);
            let after = 1 + (frac * runtime as f64) as u64;
            return FaultOutcome::Fail {
                after: after.min(runtime),
            };
        }
        if self.straggler_rate > 0.0
            && self.straggler_factor > 1.0
            && self.draw(task, attempt, SALT_STRAGGLE) < self.straggler_rate
        {
            let slots = (runtime as f64 * self.straggler_factor).ceil() as u64;
            if slots > runtime {
                return FaultOutcome::Straggle { slots };
            }
        }
        FaultOutcome::None
    }

    /// Slots attempt `attempt` of `task` occupies the cluster for:
    /// `runtime` unless the attempt fails early or straggles long.
    #[must_use]
    pub fn run_slots(&self, task: TaskId, attempt: u32, runtime: u64) -> u64 {
        match self.outcome(task, attempt, runtime) {
            FaultOutcome::None => runtime,
            FaultOutcome::Fail { after } => after,
            FaultOutcome::Straggle { slots } => slots,
        }
    }
}

/// One aborted execution attempt: the task occupied the cluster over
/// `[start, end)` and then failed, freeing its resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailedRun {
    /// The task that failed.
    pub task: TaskId,
    /// Slot the attempt started at.
    pub start: u64,
    /// Slot the attempt aborted at (exclusive; `end > start`).
    pub end: u64,
    /// 0-based attempt index of the aborted run.
    pub attempt: u32,
}

/// Per-episode fault bookkeeping carried by [`SimState`] when a plan is
/// attached. Boxed behind an `Option` so fault-free states grow by one
/// pointer and skip every fault branch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct FaultState {
    /// The plan realizing per-attempt outcomes.
    pub(crate) plan: FaultPlan,
    /// Execution attempts started per task (monotone; incremented at
    /// schedule time).
    pub(crate) attempts: Vec<u32>,
    /// Clock of each task's most recent failure (meaningful once the
    /// task has failed at least once) — feeds the re-execution latency
    /// histogram.
    pub(crate) last_fail: Vec<u64>,
    /// Every aborted attempt, in failure order: the capacity these runs
    /// held over `[start, end)` is part of the realized resource usage
    /// and is re-checked by the fault-aware judges.
    pub(crate) failed_runs: Vec<FailedRun>,
    /// Straggling attempts started so far.
    pub(crate) straggles: u64,
    /// The first task to exhaust its retry budget, if any: a poison
    /// marker that makes the state terminal and the episode fail fast.
    pub(crate) exhausted: Option<TaskId>,
    /// Incremental XOR-set of [`attempt_key`]s, folded into the state
    /// fingerprints: states differing only in retry history differ in
    /// future fault outcomes and must not alias.
    pub(crate) attempt_hash: u64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, tasks: usize) -> Self {
        FaultState {
            plan,
            attempts: vec![0; tasks],
            last_fail: vec![0; tasks],
            failed_runs: Vec::new(),
            straggles: 0,
            exhausted: None,
            attempt_hash: 0,
        }
    }

    /// From-scratch recomputation of [`FaultState::attempt_hash`] — the
    /// invariant auditor's ground truth.
    pub(crate) fn recompute_attempt_hash(&self) -> u64 {
        self.attempts
            .iter()
            .enumerate()
            .fold(0, |h, (i, &a)| h ^ attempt_key(i, a))
    }
}

/// The realized outcome of executing a planned schedule under faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyRun {
    /// The realized schedule: one placement per *started* task, with the
    /// final attempt's actual start and occupancy (straggling attempts
    /// finish later than `start + runtime`). Complete in single-job
    /// runs; may omit never-started tasks under a multi-job horizon.
    pub schedule: Schedule,
    /// Every aborted attempt, in failure order.
    pub failed_runs: Vec<FailedRun>,
    /// Execution attempts started per task.
    pub attempts: Vec<u32>,
    /// Realized makespan (the last effective finish; equals
    /// `schedule.makespan()`).
    pub makespan: u64,
    /// Total failed attempts (`== failed_runs.len()`).
    pub failures: u64,
    /// Total straggling attempts.
    pub straggles: u64,
}

/// The realized outcome of a multi-job execution under faults.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiFaultyRun {
    /// The realized run (partial if the horizon cut the episode).
    pub run: FaultyRun,
    /// Fault-aware JCT report over the realized execution (censored at
    /// the final clock when truncated).
    pub report: JctReport,
    /// `true` when the horizon cut the episode before all jobs finished.
    pub truncated: bool,
}

/// Sorts a planned schedule into the greedy dispatch priority order:
/// ascending planned start, ties by task id.
fn dispatch_order(planned: &Schedule) -> Vec<TaskId> {
    let mut order: Vec<(u64, TaskId)> = planned
        .placements()
        .iter()
        .map(|p| (p.start, p.task))
        .collect();
    order.sort_unstable();
    order.into_iter().map(|(_, t)| t).collect()
}

/// Greedy priority dispatch of `order` over `sim` until terminal (or the
/// horizon): schedule the first priority-order task that is ready and
/// fits, else process. Deterministic given `(order, plan)`; fails fast
/// with [`ClusterError::RetriesExhausted`] when a task runs out of
/// retries, and audits every step when an auditor is supplied.
fn dispatch(
    dag: &Dag,
    order: &[TaskId],
    sim: &mut SimState,
    mut auditor: Option<&mut InvariantAuditor>,
    horizon: Option<u64>,
) -> Result<(), SpearError> {
    if let Some(a) = auditor.as_deref_mut() {
        a.check(dag, sim)?;
    }
    loop {
        if let Some(task) = sim.exhausted() {
            return Err(ClusterError::RetriesExhausted {
                task,
                attempts: sim.attempts_of(task),
            }
            .into());
        }
        if sim.is_terminal(dag) || horizon.is_some_and(|h| sim.clock() >= h) {
            return Ok(());
        }
        let action = order
            .iter()
            .copied()
            .find(|&t| sim.can_schedule(dag, t))
            .map_or(Action::Process, Action::Schedule);
        sim.apply(dag, action)?;
        if let Some(a) = auditor.as_deref_mut() {
            a.check(dag, sim)?;
        }
    }
}

/// Freezes the (possibly partial) realized schedule out of a fault-aware
/// simulation: one placement per started task, finish = start + the
/// final attempt's effective occupancy.
fn realized_schedule(dag: &Dag, sim: &SimState) -> Schedule {
    let mut placements = Vec::new();
    let mut makespan = 0u64;
    for i in 0..dag.len() {
        let task = TaskId::new(i);
        if let Some(start) = sim.start_of(task) {
            let finish = start + sim.run_slots_of(dag, task);
            makespan = makespan.max(finish);
            placements.push(Placement {
                task,
                start,
                finish,
                machine: sim.machine_of(task).unwrap_or(0),
            });
        }
    }
    Schedule::from_placements(placements, makespan)
}

fn freeze_run(dag: &Dag, sim: &SimState) -> FaultyRun {
    let schedule = realized_schedule(dag, sim);
    let makespan = schedule.makespan();
    FaultyRun {
        schedule,
        failed_runs: sim.failed_runs().to_vec(),
        attempts: (0..dag.len())
            .map(|i| sim.attempts_of(TaskId::new(i)))
            .collect(),
        makespan,
        failures: sim.fault_failures(),
        straggles: sim.fault_straggles(),
    }
}

fn execute_impl(
    dag: &Dag,
    spec: &ClusterSpec,
    planned: &Schedule,
    plan: &FaultPlan,
    audited: bool,
) -> Result<FaultyRun, SpearError> {
    let mut sim = SimState::new(dag, spec)?.with_faults(*plan);
    let order = dispatch_order(planned);
    let mut auditor = audited.then(InvariantAuditor::new);
    dispatch(dag, &order, &mut sim, auditor.as_mut(), None)?;
    Ok(freeze_run(dag, &sim))
}

/// Executes a fault-free planned schedule under `plan` with greedy
/// priority dispatch (planned `(start, task)` order) and returns the
/// realized run. With `FaultPlan::none()` the realized schedule equals
/// the planned one re-simulated, bit for bit.
///
/// # Errors
///
/// [`ClusterError::RetriesExhausted`] when a task fails more than
/// `max_retries + 1` attempts; construction errors as [`SimState::new`].
pub fn execute_under_faults(
    dag: &Dag,
    spec: &ClusterSpec,
    planned: &Schedule,
    plan: &FaultPlan,
) -> Result<FaultyRun, SpearError> {
    execute_impl(dag, spec, planned, plan, false)
}

/// [`execute_under_faults`] with the invariant auditor checking the
/// simulation after every step — the sim-replay judge of the fault-aware
/// differential harness.
///
/// # Errors
///
/// Additionally [`SpearError::Audit`] on any invariant violation.
pub fn execute_under_faults_audited(
    dag: &Dag,
    spec: &ClusterSpec,
    planned: &Schedule,
    plan: &FaultPlan,
) -> Result<FaultyRun, SpearError> {
    execute_impl(dag, spec, planned, plan, true)
}

/// Executes a planned multi-job union schedule under `plan`, stopping at
/// `horizon` (if given) like [`MultiJobEnv`](crate::MultiJobEnv): the
/// realized run may then be partial and the JCT report censored at the
/// final clock.
///
/// # Errors
///
/// As [`execute_under_faults`]; retry exhaustion fails fast even under a
/// horizon.
pub fn execute_multi_under_faults(
    queue: &JobQueue,
    spec: &ClusterSpec,
    planned: &Schedule,
    plan: &FaultPlan,
    horizon: Option<u64>,
) -> Result<MultiFaultyRun, SpearError> {
    let dag = queue.union_dag();
    let mut sim = SimState::new_multi(queue, spec)?.with_faults(*plan);
    let order = dispatch_order(planned);
    dispatch(dag, &order, &mut sim, None, horizon)?;
    let truncated = !sim.is_terminal(dag);
    let report = queue.jct_report_partial(&sim);
    Ok(MultiFaultyRun {
        run: freeze_run(dag, &sim),
        report,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_dag::{DagBuilder, ResourceVec, Task};

    fn plan(fail_rate: f64, straggler_rate: f64, factor: f64, retries: u32) -> FaultPlan {
        FaultPlan {
            seed: 11,
            fail_rate,
            straggler_rate,
            straggler_factor: factor,
            max_retries: retries,
        }
    }

    fn diamond(dims: usize) -> Dag {
        let mut b = DagBuilder::new(dims);
        let demand = ResourceVec::from_slice(&vec![0.4; dims]);
        let a = b.add_task(Task::new(3, demand.clone()));
        let c = b.add_task(Task::new(2, demand.clone()));
        let d = b.add_task(Task::new(4, demand.clone()));
        let e = b.add_task(Task::new(1, demand));
        b.add_edge(a, c).unwrap();
        b.add_edge(a, d).unwrap();
        b.add_edge(c, e).unwrap();
        b.add_edge(d, e).unwrap();
        b.build().unwrap()
    }

    fn greedy_schedule(dag: &Dag, spec: &ClusterSpec) -> Schedule {
        let mut sim = SimState::new(dag, spec).unwrap();
        sim.run_with(dag, |_, actions| actions[0]).unwrap();
        sim.into_schedule(dag)
    }

    #[test]
    fn outcomes_are_pure_and_bounded() {
        let p = plan(0.3, 0.3, 1.5, 2);
        for task in 0..40 {
            for attempt in 0..4 {
                let t = TaskId::new(task);
                let a = p.outcome(t, attempt, 10);
                assert_eq!(a, p.outcome(t, attempt, 10), "outcome must be pure");
                match a {
                    FaultOutcome::None => {}
                    FaultOutcome::Fail { after } => {
                        assert!((1..=10).contains(&after), "fail point {after} out of range")
                    }
                    FaultOutcome::Straggle { slots } => {
                        assert!(slots > 10, "straggle must stretch occupancy");
                        assert_eq!(slots, 15);
                    }
                }
            }
        }
    }

    #[test]
    fn none_plan_never_faults_and_zero_runtime_is_immune() {
        let none = FaultPlan::none();
        assert!(none.is_none());
        for task in 0..20 {
            assert_eq!(none.outcome(TaskId::new(task), 0, 7), FaultOutcome::None);
        }
        let certain = plan(1.0, 1.0, 3.0, 1);
        assert_eq!(certain.outcome(TaskId::new(0), 0, 0), FaultOutcome::None);
    }

    #[test]
    fn fault_rates_are_roughly_honored() {
        let p = plan(0.2, 0.0, 1.0, 0);
        let fails = (0..2000)
            .filter(|&i| matches!(p.outcome(TaskId::new(i), 0, 5), FaultOutcome::Fail { .. }))
            .count();
        let rate = fails as f64 / 2000.0;
        assert!((rate - 0.2).abs() < 0.03, "realized fail rate {rate}");
    }

    #[test]
    fn attempt_keys_track_retry_history() {
        assert_eq!(attempt_key(3, 0), 0);
        assert_ne!(attempt_key(3, 1), attempt_key(3, 2));
        assert_ne!(attempt_key(3, 1), attempt_key(4, 1));
        let mut fs = FaultState::new(plan(0.5, 0.0, 1.0, 3), 4);
        assert_eq!(fs.recompute_attempt_hash(), 0);
        fs.attempts[2] = 2;
        fs.attempts[0] = 1;
        assert_eq!(
            fs.recompute_attempt_hash(),
            attempt_key(2, 2) ^ attempt_key(0, 1)
        );
    }

    #[test]
    fn none_plan_execution_reproduces_the_planned_schedule() {
        let dag = diamond(2);
        let spec = ClusterSpec::unit(2);
        let planned = greedy_schedule(&dag, &spec);
        let run = execute_under_faults_audited(&dag, &spec, &planned, &FaultPlan::none()).unwrap();
        assert_eq!(run.schedule, planned);
        assert_eq!(run.failures, 0);
        assert_eq!(run.straggles, 0);
        assert!(run.failed_runs.is_empty());
        assert!(run.attempts.iter().all(|&a| a == 1));
    }

    #[test]
    fn faulty_execution_is_deterministic_and_degrades_makespan() {
        let dag = diamond(2);
        let spec = ClusterSpec::unit(2);
        let planned = greedy_schedule(&dag, &spec);
        let p = plan(0.35, 0.3, 2.0, 5);
        let a = execute_under_faults_audited(&dag, &spec, &planned, &p).unwrap();
        let b = execute_under_faults(&dag, &spec, &planned, &p).unwrap();
        assert_eq!(a, b, "same plan must realize the same run");
        assert!(a.makespan >= planned.makespan());
    }

    #[test]
    fn exhausted_retries_fail_fast_with_a_typed_error() {
        let dag = diamond(1);
        let spec = ClusterSpec::unit(1);
        let planned = greedy_schedule(&dag, &spec);
        let p = plan(1.0, 0.0, 1.0, 2);
        let err = execute_under_faults(&dag, &spec, &planned, &p).unwrap_err();
        match err.root_cause() {
            SpearError::Cluster(ClusterError::RetriesExhausted { attempts, .. }) => {
                assert_eq!(*attempts, 3);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn multi_job_execution_reports_censored_jcts_under_a_horizon() {
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(4, ResourceVec::from_slice(&[0.6])));
        let d0 = b.build().unwrap();
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(4, ResourceVec::from_slice(&[0.6])));
        let d1 = b.build().unwrap();
        let queue = JobQueue::new(vec![(0, d0), (1, d1)]).unwrap();
        let spec = ClusterSpec::unit(1);
        let planned = {
            let mut sim = SimState::new_multi(&queue, &spec).unwrap();
            sim.run_with(queue.union_dag(), |_, actions| actions[0])
                .unwrap();
            sim.into_schedule(queue.union_dag())
        };
        // Job 0 occupies the cluster until t=4, so the horizon at t=3
        // cuts the episode before job 1 can start.
        let out = execute_multi_under_faults(&queue, &spec, &planned, &FaultPlan::none(), Some(3))
            .unwrap();
        assert!(out.truncated);
        assert_eq!(out.report.completions().len(), 1);
        assert_eq!(out.report.unfinished(), 1);
        let full =
            execute_multi_under_faults(&queue, &spec, &planned, &FaultPlan::none(), None).unwrap();
        assert!(!full.truncated);
        assert_eq!(full.report.unfinished(), 0);
    }
}
