//! Heterogeneous machine sets and the inter-machine network model.
//!
//! A [`MachineSet`] turns the single-box [`ClusterSpec`](crate::ClusterSpec)
//! into a set of machines with individual capacities plus a bandwidth
//! matrix. A task whose parent ran on a *different* machine pays a
//! deterministic transfer delay of `ceil(edge_bytes / bandwidth)` slots
//! before it may start — dslab-style, in one of two [`TransferMode`]s.
//! Edge payload sizes are drawn from a seeded hash of the `(parent,
//! child)` pair, so every component of the model (simulator, schedule
//! validator, diffcheck judges) can re-derive the same delays
//! independently, without sharing any mutable state.

use serde::{Deserialize, Serialize};
use spear_dag::ResourceVec;

use crate::ClusterError;

/// How intermediate data travels between machines (dslab's
/// `DataTransferMode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransferMode {
    /// Payloads move over the direct link: `ceil(bytes / bandwidth(src,
    /// dst))` slots.
    Direct,
    /// Payloads are staged through a master node: upload over `src`'s
    /// uplink plus download over `dst`'s uplink (the matrix diagonal
    /// doubles as the per-machine uplink bandwidth).
    ViaMaster,
}

impl TransferMode {
    /// Parses the CLI spelling (`direct` / `via-master`).
    ///
    /// # Errors
    ///
    /// Returns the offending string on an unknown spelling.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "direct" => Ok(TransferMode::Direct),
            "via-master" | "master" => Ok(TransferMode::ViaMaster),
            other => Err(format!(
                "unknown transfer mode `{other}` (expected `direct` or `via-master`)"
            )),
        }
    }
}

/// SplitMix64 finalizer over the seed/edge mix — the same full-avalanche
/// bijection the state fingerprint uses, duplicated here so the network
/// model stays self-contained (judges re-derive delays from a
/// `MachineSet` alone).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A set of machines with individual capacities and a link-bandwidth
/// matrix. Attach one to a cluster with
/// [`ClusterSpec::hetero`](crate::ClusterSpec::hetero).
///
/// Bandwidths are integers in *bytes per slot* and must be ≥ 1; the
/// `n × n` matrix is row-major (`bandwidth[src][dst]`), and its diagonal
/// is the per-machine master uplink used by
/// [`TransferMode::ViaMaster`]. Edge payload sizes are deterministic
/// seeded draws in `[1, max_edge_bytes]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSet {
    capacities: Vec<ResourceVec>,
    bandwidth: Vec<u64>,
    mode: TransferMode,
    seed: u64,
    max_edge_bytes: u64,
}

impl MachineSet {
    /// Builds a machine set from explicit per-machine capacities and a
    /// row-major `n × n` bandwidth matrix.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidCapacity`] if there are no machines, a
    /// capacity has a non-positive/non-finite component or the machines
    /// disagree on dimensionality; [`ClusterError::InvalidBandwidth`] if
    /// the matrix is not `n × n`, contains a zero entry, or
    /// `max_edge_bytes` is zero.
    pub fn new(
        capacities: Vec<ResourceVec>,
        bandwidth: Vec<u64>,
        mode: TransferMode,
        seed: u64,
        max_edge_bytes: u64,
    ) -> Result<Self, ClusterError> {
        let n = capacities.len();
        if n == 0 {
            return Err(ClusterError::InvalidCapacity);
        }
        let dims = capacities[0].dims();
        for c in &capacities {
            if c.dims() != dims
                || dims == 0
                || c.as_slice().iter().any(|&v| !v.is_finite() || v <= 0.0)
            {
                return Err(ClusterError::InvalidCapacity);
            }
        }
        if bandwidth.len() != n * n || bandwidth.contains(&0) || max_edge_bytes == 0 {
            return Err(ClusterError::InvalidBandwidth);
        }
        Ok(MachineSet {
            capacities,
            bandwidth,
            mode,
            seed,
            max_edge_bytes,
        })
    }

    /// A set of `n` identical machines with a uniform link bandwidth —
    /// the quickest way to a homogeneous multi-machine cluster.
    ///
    /// # Errors
    ///
    /// As [`MachineSet::new`].
    pub fn uniform(
        n: usize,
        capacity: ResourceVec,
        bandwidth: u64,
        mode: TransferMode,
        seed: u64,
        max_edge_bytes: u64,
    ) -> Result<Self, ClusterError> {
        MachineSet::new(
            vec![capacity; n.max(1)],
            vec![bandwidth; n.max(1) * n.max(1)],
            mode,
            seed,
            max_edge_bytes,
        )
    }

    /// Number of machines.
    #[inline]
    pub fn len(&self) -> usize {
        self.capacities.len()
    }

    /// `true` for a degenerate empty set (never constructible through
    /// [`MachineSet::new`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.capacities.is_empty()
    }

    /// Capacity of machine `m`.
    #[inline]
    pub fn capacity(&self, m: u32) -> &ResourceVec {
        &self.capacities[m as usize]
    }

    /// All per-machine capacities, in machine order.
    #[inline]
    pub fn capacities(&self) -> &[ResourceVec] {
        &self.capacities
    }

    /// Sum of all machine capacities — the aggregate the single-box
    /// consumers (featurizer globals, lower bounds) see.
    pub fn total_capacity(&self) -> ResourceVec {
        let mut total = ResourceVec::zeros(self.capacities[0].dims());
        for c in &self.capacities {
            total.add_assign(c);
        }
        total
    }

    /// Link bandwidth from `src` to `dst` in bytes per slot.
    #[inline]
    pub fn bandwidth(&self, src: u32, dst: u32) -> u64 {
        self.bandwidth[src as usize * self.capacities.len() + dst as usize]
    }

    /// Overrides one link's bandwidth (test/sweep knob; must stay ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics on a zero bandwidth or out-of-range machine index.
    pub fn set_bandwidth(&mut self, src: u32, dst: u32, bandwidth: u64) {
        assert!(bandwidth >= 1, "bandwidth must be at least 1 byte/slot");
        let n = self.capacities.len();
        self.bandwidth[src as usize * n + dst as usize] = bandwidth;
    }

    /// The transfer mode of this set.
    #[inline]
    pub fn mode(&self) -> TransferMode {
        self.mode
    }

    /// The seed of the edge-payload draws.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Upper bound of the seeded edge payload draws.
    #[inline]
    pub fn max_edge_bytes(&self) -> u64 {
        self.max_edge_bytes
    }

    /// Deterministic payload size of the DAG edge `parent → child`, in
    /// `[1, max_edge_bytes]`. Pure function of the seed and the task
    /// indices, so every judge re-derives identical sizes.
    #[inline]
    pub fn edge_bytes(&self, parent: usize, child: usize) -> u64 {
        let h = mix(self.seed
            ^ (parent as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (child as u64).wrapping_mul(0xc4ce_b9fe_1a85_ec53));
        1 + h % self.max_edge_bytes
    }

    /// Slots `bytes` take to travel from `src` to `dst`: zero for
    /// co-located endpoints, otherwise `ceil(bytes / bandwidth)` per
    /// traversed link (one link direct, two via the master).
    #[inline]
    pub fn transfer_delay(&self, bytes: u64, src: u32, dst: u32) -> u64 {
        if src == dst {
            return 0;
        }
        let ceil_div = |b: u64, bw: u64| b.div_ceil(bw);
        match self.mode {
            TransferMode::Direct => ceil_div(bytes, self.bandwidth(src, dst)),
            TransferMode::ViaMaster => {
                ceil_div(bytes, self.bandwidth(src, src))
                    + ceil_div(bytes, self.bandwidth(dst, dst))
            }
        }
    }

    /// Transfer delay of the DAG edge `parent → child` between the given
    /// machines: [`MachineSet::edge_bytes`] through
    /// [`MachineSet::transfer_delay`].
    #[inline]
    pub fn edge_delay(&self, parent: usize, child: usize, src: u32, dst: u32) -> u64 {
        if src == dst {
            return 0;
        }
        self.transfer_delay(self.edge_bytes(parent, child), src, dst)
    }

    /// The smallest delay the edge `parent → child` can incur when the
    /// parent ran on `src` and the child may run anywhere — the
    /// capacity-relaxed bound BnB uses (0: co-locating with the parent is
    /// always an option in the relaxation).
    #[inline]
    pub fn min_edge_delay(&self, _parent: usize, _child: usize, _src: u32) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_machines(mode: TransferMode) -> MachineSet {
        MachineSet::new(
            vec![
                ResourceVec::from_slice(&[1.0]),
                ResourceVec::from_slice(&[0.5]),
            ],
            vec![8, 4, 2, 16],
            mode,
            7,
            64,
        )
        .unwrap()
    }

    #[test]
    fn rejects_bad_sets() {
        assert_eq!(
            MachineSet::new(vec![], vec![], TransferMode::Direct, 0, 1).unwrap_err(),
            ClusterError::InvalidCapacity
        );
        assert_eq!(
            MachineSet::new(
                vec![ResourceVec::from_slice(&[1.0]), ResourceVec::zeros(2)],
                vec![1, 1, 1, 1],
                TransferMode::Direct,
                0,
                1,
            )
            .unwrap_err(),
            ClusterError::InvalidCapacity
        );
        assert_eq!(
            MachineSet::new(
                vec![ResourceVec::from_slice(&[1.0])],
                vec![1, 1],
                TransferMode::Direct,
                0,
                1,
            )
            .unwrap_err(),
            ClusterError::InvalidBandwidth
        );
        assert_eq!(
            MachineSet::new(
                vec![ResourceVec::from_slice(&[1.0])],
                vec![0],
                TransferMode::Direct,
                0,
                1,
            )
            .unwrap_err(),
            ClusterError::InvalidBandwidth
        );
        assert_eq!(
            MachineSet::new(
                vec![ResourceVec::from_slice(&[1.0])],
                vec![1],
                TransferMode::Direct,
                0,
                0,
            )
            .unwrap_err(),
            ClusterError::InvalidBandwidth
        );
    }

    #[test]
    fn total_capacity_sums_machines() {
        let set = two_machines(TransferMode::Direct);
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_capacity().as_slice(), &[1.5]);
    }

    #[test]
    fn edge_bytes_are_deterministic_and_bounded() {
        let set = two_machines(TransferMode::Direct);
        for p in 0..10 {
            for c in 0..10 {
                let b = set.edge_bytes(p, c);
                assert_eq!(b, set.edge_bytes(p, c));
                assert!((1..=64).contains(&b));
            }
        }
        // Different seeds draw different payload streams (some pair must
        // differ for any non-trivial bound).
        let other = MachineSet::new(
            set.capacities().to_vec(),
            vec![8, 4, 2, 16],
            TransferMode::Direct,
            set.seed() + 1,
            64,
        )
        .unwrap();
        assert!((0..20).any(|i| set.edge_bytes(i, i + 1) != other.edge_bytes(i, i + 1)));
    }

    #[test]
    fn colocated_transfers_are_free() {
        for mode in [TransferMode::Direct, TransferMode::ViaMaster] {
            let set = two_machines(mode);
            assert_eq!(set.transfer_delay(1000, 0, 0), 0);
            assert_eq!(set.transfer_delay(1000, 1, 1), 0);
            assert_eq!(set.edge_delay(0, 1, 1, 1), 0);
        }
    }

    #[test]
    fn direct_delay_is_ceil_of_link() {
        let set = two_machines(TransferMode::Direct);
        // bandwidth[0][1] = 4: 9 bytes take ceil(9/4) = 3 slots.
        assert_eq!(set.transfer_delay(9, 0, 1), 3);
        // bandwidth[1][0] = 2: asymmetric links are respected.
        assert_eq!(set.transfer_delay(9, 1, 0), 5);
    }

    #[test]
    fn via_master_sums_both_uplinks() {
        let set = two_machines(TransferMode::ViaMaster);
        // Uplinks are the diagonal: bw[0][0] = 8, bw[1][1] = 16.
        // 9 bytes: ceil(9/8) + ceil(9/16) = 2 + 1.
        assert_eq!(set.transfer_delay(9, 0, 1), 3);
        assert_eq!(set.transfer_delay(9, 1, 0), 3);
    }

    #[test]
    fn lower_bandwidth_never_speeds_a_transfer() {
        let mut set = two_machines(TransferMode::Direct);
        let before = set.transfer_delay(33, 0, 1);
        set.set_bandwidth(0, 1, 1);
        assert!(set.transfer_delay(33, 0, 1) >= before);
    }

    #[test]
    fn parses_modes() {
        assert_eq!(TransferMode::parse("direct"), Ok(TransferMode::Direct));
        assert_eq!(
            TransferMode::parse("via-master"),
            Ok(TransferMode::ViaMaster)
        );
        assert!(TransferMode::parse("warp").is_err());
    }

    #[test]
    fn serde_round_trip() {
        let set = two_machines(TransferMode::ViaMaster);
        let json = serde_json::to_string(&set).unwrap();
        let back: MachineSet = serde_json::from_str(&json).unwrap();
        assert_eq!(set, back);
    }
}
