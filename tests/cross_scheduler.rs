//! Cross-scheduler sanity: every algorithm, including the search-based
//! ones, on the same random jobs — validity, bounds, and the expected
//! quality ordering against the random floor.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spear::dag::generator::LayeredDagSpec;
use spear::{
    ClusterSpec, CpScheduler, Dag, FeatureConfig, Graphene, MctsConfig, MctsScheduler,
    RandomScheduler, Scheduler, SjfScheduler, SpearBuilder, TetrisScheduler,
};

fn random_dag(num_tasks: usize, seed: u64) -> Dag {
    LayeredDagSpec {
        num_tasks,
        ..LayeredDagSpec::paper_training()
    }
    .generate(&mut StdRng::seed_from_u64(seed))
}

fn search_config(seed: u64) -> MctsConfig {
    MctsConfig {
        initial_budget: 80,
        min_budget: 15,
        seed,
        ..MctsConfig::default()
    }
}

#[test]
fn all_schedulers_valid_on_random_jobs() {
    let spec = ClusterSpec::unit(2);
    for seed in 0..3 {
        let dag = random_dag(20, seed);
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(TetrisScheduler::new()),
            Box::new(SjfScheduler::new()),
            Box::new(CpScheduler::new()),
            Box::new(RandomScheduler::seeded(seed)),
            Box::new(Graphene::new()),
            Box::new(MctsScheduler::pure(search_config(seed))),
            Box::new(
                SpearBuilder::new()
                    .initial_budget(60)
                    .min_budget(10)
                    .feature_config(FeatureConfig::small(2))
                    .hidden_layers(&[16])
                    .seed(seed)
                    .build_untrained(),
            ),
        ];
        for s in &mut schedulers {
            let schedule = s.schedule(&dag, &spec).unwrap();
            schedule.validate(&dag, &spec).unwrap();
            assert!(
                schedule.makespan() >= dag.makespan_lower_bound(spec.capacity()),
                "{} beat the lower bound",
                s.name()
            );
            assert!(
                schedule.makespan() <= dag.total_work(),
                "{} exceeded serial work",
                s.name()
            );
        }
    }
}

#[test]
fn mcts_beats_the_random_floor_on_average() {
    let spec = ClusterSpec::unit(2);
    let mut mcts_total = 0u64;
    let mut random_total = 0u64;
    for seed in 0..4 {
        let dag = random_dag(25, 100 + seed);
        mcts_total += MctsScheduler::pure(search_config(seed))
            .schedule(&dag, &spec)
            .unwrap()
            .makespan();
        random_total += RandomScheduler::seeded(seed)
            .schedule(&dag, &spec)
            .unwrap()
            .makespan();
    }
    assert!(
        mcts_total <= random_total,
        "mcts {mcts_total} vs random {random_total}"
    );
}

#[test]
fn schedulers_agree_on_trivial_jobs() {
    // Single task: everyone produces the identical, optimal schedule.
    let mut b = spear::DagBuilder::new(2);
    let t = b.add_task(spear::Task::new(
        7,
        spear::ResourceVec::from_slice(&[0.5, 0.5]),
    ));
    let dag = b.build().unwrap();
    let spec = ClusterSpec::unit(2);
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(TetrisScheduler::new()),
        Box::new(SjfScheduler::new()),
        Box::new(CpScheduler::new()),
        Box::new(Graphene::new()),
        Box::new(MctsScheduler::pure(search_config(0))),
    ];
    for s in &mut schedulers {
        let schedule = s.schedule(&dag, &spec).unwrap();
        assert_eq!(schedule.makespan(), 7, "{}", s.name());
        assert_eq!(schedule.placement_of(t).unwrap().start, 0);
    }
}

#[test]
fn wider_cluster_never_hurts_search() {
    let dag = random_dag(20, 9);
    let narrow = ClusterSpec::unit(2);
    let wide = ClusterSpec::new(spear::ResourceVec::from_slice(&[2.0, 2.0])).unwrap();
    let m_narrow = MctsScheduler::pure(search_config(1))
        .schedule(&dag, &narrow)
        .unwrap()
        .makespan();
    let m_wide = MctsScheduler::pure(search_config(1))
        .schedule(&dag, &wide)
        .unwrap()
        .makespan();
    // Twice the capacity can only help (same search budget, easier
    // packing): allow a little search noise but no large regression.
    assert!(
        m_wide <= m_narrow + m_narrow / 10,
        "wide {m_wide} vs narrow {m_narrow}"
    );
}
