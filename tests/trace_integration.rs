//! Trace-driven integration: the synthetic production trace feeds real
//! schedulers end-to-end, and its statistics match the paper's.

use spear::{
    ClusterSpec, Graphene, Scheduler, SyntheticTraceSpec, TetrisScheduler, Trace, TraceStats,
};

#[test]
fn trace_statistics_match_paper() {
    let trace = SyntheticTraceSpec::paper().generate(2026);
    let stats = TraceStats::compute(&trace);
    assert_eq!(stats.jobs, 99);
    assert!(stats.max_map_tasks <= 29);
    assert!(stats.max_reduce_tasks <= 38);
    assert!((10.0..=18.0).contains(&stats.median_map_tasks));
    assert!((13.0..=21.0).contains(&stats.median_reduce_tasks));
    // Fig. 9(b) medians ≈ 73 (map) / 32 (reduce); allow sampling noise.
    assert!((45.0..=110.0).contains(&stats.median_map_runtime));
    assert!((20.0..=48.0).contains(&stats.median_reduce_runtime));
}

#[test]
fn trace_jobs_schedule_end_to_end() {
    let trace = SyntheticTraceSpec::paper().generate(3);
    let spec = ClusterSpec::unit(2);
    for job in trace.jobs.iter().take(5) {
        let dag = job.to_dag().unwrap();
        let g = Graphene::new().schedule(&dag, &spec).unwrap();
        g.validate(&dag, &spec).unwrap();
        let t = TetrisScheduler::new().schedule(&dag, &spec).unwrap();
        t.validate(&dag, &spec).unwrap();
        // Reduce tasks can only start after every map finishes.
        let last_map_finish = (0..job.num_map())
            .map(|i| g.placement_of(spear::TaskId::new(i)).unwrap().finish)
            .max()
            .unwrap();
        for r in 0..job.num_reduce() {
            let p = g
                .placement_of(spear::TaskId::new(job.num_map() + r))
                .unwrap();
            assert!(p.start >= last_map_finish);
        }
    }
}

#[test]
fn trace_roundtrips_through_json_files() {
    let trace = SyntheticTraceSpec::paper().generate(4);
    let dir = std::env::temp_dir().join("spear-trace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    trace.save_to_path(&path).unwrap();
    let loaded = Trace::load_from_path(&path).unwrap();
    // Structure round-trips exactly; demands up to one JSON float ulp.
    assert_eq!(trace.jobs.len(), loaded.jobs.len());
    for (a, b) in trace.jobs.iter().zip(&loaded.jobs) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.map_runtimes, b.map_runtimes);
        assert_eq!(a.reduce_runtimes, b.reduce_runtimes);
        for (da, db) in a.map_demands.iter().zip(&b.map_demands) {
            for r in 0..da.dims() {
                assert!((da[r] - db[r]).abs() < 1e-12);
            }
        }
        for (da, db) in a.reduce_demands.iter().zip(&b.reduce_demands) {
            for r in 0..da.dims() {
                assert!((da[r] - db[r]).abs() < 1e-12);
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn cdf_helpers_cover_all_jobs() {
    let trace = SyntheticTraceSpec::paper().generate(5);
    assert_eq!(TraceStats::map_count_cdf(&trace).len(), 99);
    assert_eq!(TraceStats::reduce_runtime_cdf(&trace).len(), 99);
    let cdf = TraceStats::map_count_cdf(&trace);
    assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
}

#[test]
fn filter_is_idempotent_on_generated_traces() {
    let trace = SyntheticTraceSpec::paper().generate(6);
    let n = trace.jobs.len();
    let filtered = trace.filtered(5);
    assert_eq!(filtered.jobs.len(), n, "generator already filters");
}
