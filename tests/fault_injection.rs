//! Fault-injection acceptance: the scheduler roster executing its plans
//! under seeded failures and stragglers, every realized run vetted by the
//! fault-aware tri-judge; the null-plan identity guarantee; deterministic
//! retry exhaustion as a typed error; and the fault × horizon interplay
//! on multi-job arrival streams.

use spear::dag::generator::LayeredDagSpec;
use spear::diffcheck::{check_faulty_run, SchedulerKind};
use spear::{
    execute_multi_under_faults, execute_under_faults, ArrivalProcess, ArrivalStreamSpec,
    ClusterError, ClusterSpec, Dag, FaultPlan, FaultProfile, JobQueue, JobSource, Scheduler,
    SpearError,
};

fn dag(num_tasks: usize, seed: u64) -> Dag {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    LayeredDagSpec {
        num_tasks,
        ..LayeredDagSpec::paper_training()
    }
    .generate(&mut StdRng::seed_from_u64(seed))
}

fn stream_queue(jobs: usize, tasks_per_job: usize, seed: u64) -> JobQueue {
    let stream = ArrivalStreamSpec {
        jobs,
        process: ArrivalProcess::Poisson { mean_gap: 5.0 },
        source: JobSource::Layered(LayeredDagSpec {
            num_tasks: tasks_per_job,
            ..LayeredDagSpec::paper_training()
        }),
    }
    .generate(seed)
    .unwrap();
    JobQueue::new(stream).unwrap()
}

/// Every roster member's plan survives execution under a 10% seeded
/// failure/straggler rate, and the realized run passes all three
/// fault-aware judges. The sweep as a whole must actually draw faults —
/// a silently fault-free "fault" test would prove nothing.
#[test]
fn the_roster_survives_ten_percent_faults_and_passes_the_tri_judge() {
    let spec = ClusterSpec::unit(2);
    let dag = dag(14, 11);
    let profile = FaultProfile {
        max_retries: 5,
        ..FaultProfile::with_rate(0.10)
    };
    let plan = profile.plan(11);
    let mut total_faults = 0;
    for kind in SchedulerKind::ALL {
        let planned = kind.build(11, 2).schedule(&dag, &spec).unwrap();
        let run = execute_under_faults(&dag, &spec, &planned, &plan)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let tri = check_faulty_run(&dag, &spec, &planned, &plan, &run);
        assert!(tri.all_ok(), "{}: {}", kind.name(), tri.summary());
        assert_eq!(run.attempts.len(), dag.len(), "{}", kind.name());
        total_faults += run.failures + run.straggles;
    }
    assert!(total_faults > 0, "the 10% sweep never drew a fault");
}

/// `FaultPlan::none()` is the identity: execution under it draws nothing,
/// no matter the seed, and two null plans with different seeds realize
/// bit-identical runs that the tri-judge accepts.
#[test]
fn null_plans_are_identity_regardless_of_seed() {
    let spec = ClusterSpec::unit(2);
    let dag = dag(12, 3);
    let planned = SchedulerKind::Tetris
        .build(3, 2)
        .schedule(&dag, &spec)
        .unwrap();
    let null = FaultPlan::none();
    let reseeded = FaultProfile::none().plan(0xdead_beef);
    assert!(null.is_none() && reseeded.is_none());
    let a = execute_under_faults(&dag, &spec, &planned, &null).unwrap();
    let b = execute_under_faults(&dag, &spec, &planned, &reseeded).unwrap();
    assert_eq!(a, b, "null plans must be seed-independent");
    assert_eq!((a.failures, a.straggles), (0, 0));
    assert!(a.failed_runs.is_empty());
    assert!(a.attempts.iter().all(|&n| n == 1));
    let tri = check_faulty_run(&dag, &spec, &planned, &null, &a);
    assert!(tri.all_ok(), "{}", tri.summary());
}

/// A certain-failure plan with a zero retry budget exhausts the very
/// first task attempted, surfacing the typed fail-fast error — and does
/// so reproducibly: the same seeds name the same task every time.
#[test]
fn retry_exhaustion_is_a_deterministic_typed_error() {
    let spec = ClusterSpec::unit(2);
    let dag = dag(9, 21);
    let planned = SchedulerKind::Sjf
        .build(21, 2)
        .schedule(&dag, &spec)
        .unwrap();
    let plan = FaultPlan {
        seed: 21,
        fail_rate: 1.0,
        straggler_rate: 0.0,
        straggler_factor: 1.0,
        max_retries: 0,
    };
    let exhausted = |res: Result<_, SpearError>| match res {
        Err(SpearError::Cluster(ClusterError::RetriesExhausted { task, attempts })) => {
            (task, attempts)
        }
        other => panic!("expected retry exhaustion, got {other:?}"),
    };
    let first = exhausted(execute_under_faults(&dag, &spec, &planned, &plan));
    let second = exhausted(execute_under_faults(&dag, &spec, &planned, &plan));
    assert_eq!(first, second, "exhaustion must be seed-deterministic");
    assert_eq!(first.1, 1, "a zero-retry budget allows exactly one attempt");
}

/// Faults and the execution horizon compose on a multi-job stream: an
/// unbounded run finishes every job, a tight horizon truncates the
/// episode and the censored JCT report accounts for every job either
/// way.
#[test]
fn faults_compose_with_a_multi_job_horizon() {
    let spec = ClusterSpec::unit(2);
    let queue = stream_queue(5, 6, 31);
    let planned = SchedulerKind::Tetris
        .build(31, 2)
        .schedule_multi(&queue, &spec)
        .unwrap();
    let plan = FaultProfile {
        max_retries: 5,
        ..FaultProfile::with_rate(0.15)
    }
    .plan(31);

    let full = execute_multi_under_faults(&queue, &spec, &planned, &plan, None).unwrap();
    assert!(!full.truncated);
    assert_eq!(full.report.unfinished(), 0);
    assert_eq!(full.report.completions().len(), queue.jobs());

    let horizon = full.run.makespan / 2;
    let cut = execute_multi_under_faults(&queue, &spec, &planned, &plan, Some(horizon)).unwrap();
    assert!(cut.truncated, "half the realized makespan must truncate");
    assert!(cut.report.unfinished() > 0);
    assert_eq!(
        cut.report.completions().len() + cut.report.unfinished(),
        queue.jobs(),
        "every job is either completed or censored"
    );
    assert!(cut.run.makespan <= full.run.makespan);
    // The censored report still yields a finite unfairness bound.
    assert!(cut.report.unfairness() >= 1.0 || cut.report.completions().is_empty());
}

/// Under identical seeds, injecting faults can only push the realized
/// multi-job makespan out (or leave it unchanged) relative to the null
/// plan's realization of the same union schedule.
#[test]
fn faults_never_speed_up_a_realized_stream() {
    let spec = ClusterSpec::unit(2);
    let queue = stream_queue(4, 7, 47);
    let planned = SchedulerKind::Cp
        .build(47, 2)
        .schedule_multi(&queue, &spec)
        .unwrap();
    let baseline = execute_multi_under_faults(&queue, &spec, &planned, &FaultPlan::none(), None)
        .unwrap()
        .run
        .makespan;
    for rate in [0.05, 0.15, 0.30] {
        let plan = FaultProfile {
            max_retries: 8,
            ..FaultProfile::with_rate(rate)
        }
        .plan(47);
        let run = execute_multi_under_faults(&queue, &spec, &planned, &plan, None)
            .unwrap()
            .run;
        assert!(
            run.makespan >= baseline,
            "rate {rate}: realized {} beat the fault-free realization {baseline}",
            run.makespan
        );
    }
}
