//! Golden determinism tests: fixed-seed searches must reproduce exactly
//! the schedules recorded here. These constants pin the behavior of the
//! MCTS hot path — any refactor that changes RNG call order, float
//! summation order, or action enumeration order will trip them.
//!
//! To regenerate after an *intentional* behavior change, run
//! `cargo test --release --test golden_determinism -- --ignored --nocapture`
//! and copy the printed tables.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spear::dag::generator::LayeredDagSpec;
use spear::env::{DecisionPolicy, EnvContext, EpisodeDriver};
use spear::{
    Action, ClusterSpec, Dag, FeatureConfig, MctsConfig, MctsScheduler, PolicyNetwork, Schedule,
    SimState,
};

/// Number of fixed workload DAGs each golden table covers.
const GOLDEN_DAGS: usize = 3;

/// Tasks per workload DAG (fig6a-style simulation workload).
const GOLDEN_TASKS: usize = 50;

/// Workload generator seed.
const GOLDEN_SEED: u64 = 42;

/// `(makespan, schedule fingerprint)` per DAG for pure MCTS.
const PURE_GOLDEN: [(u64, u64); GOLDEN_DAGS] = [
    (324, 0xc4060ce07e851569),
    (341, 0xf34dcf43c265d051),
    (370, 0x9196126c9e1c5389),
];

/// `(makespan, schedule fingerprint)` per DAG for DRL-guided search.
const DRL_GOLDEN: [(u64, u64); GOLDEN_DAGS] = [
    (344, 0xd0bf2cd026048d95),
    (337, 0x4f191505c3866175),
    (356, 0xb2451e3e80597f51),
];

/// `(makespan, schedule fingerprint)` per DAG for a seeded uniform policy
/// stepped through the Env layer's [`EpisodeDriver`]. Pins the driver's
/// enumeration and RNG call order independently of the searches above.
const ENV_DRIVER_GOLDEN: [(u64, u64); GOLDEN_DAGS] = [
    (394, 0x786d1d936229ff67),
    (430, 0xd8dd51ed5f1afb1e),
    (407, 0xc3031cffd93739db),
];

/// Seed of the uniform policy behind [`ENV_DRIVER_GOLDEN`].
const ENV_DRIVER_SEED: u64 = 7;

/// The fixed workload: same generator family as the fig6a experiment.
fn workload() -> (Vec<Dag>, ClusterSpec) {
    let spec = LayeredDagSpec {
        num_tasks: GOLDEN_TASKS,
        ..LayeredDagSpec::paper_simulation()
    };
    let mut rng = StdRng::seed_from_u64(GOLDEN_SEED);
    let dags = (0..GOLDEN_DAGS).map(|_| spec.generate(&mut rng)).collect();
    (dags, ClusterSpec::unit(2))
}

fn pure_scheduler() -> MctsScheduler {
    MctsScheduler::pure(MctsConfig {
        initial_budget: 80,
        min_budget: 16,
        seed: 7,
        ..MctsConfig::default()
    })
}

fn drl_scheduler() -> MctsScheduler {
    let mut rng = StdRng::seed_from_u64(0);
    let policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[16], &mut rng);
    MctsScheduler::drl(
        MctsConfig {
            initial_budget: 30,
            min_budget: 6,
            seed: 7,
            ..MctsConfig::default()
        },
        policy,
    )
}

/// FNV-1a over every task's start time in task order: detects any change
/// to the schedule, not just its makespan.
fn fingerprint(schedule: &Schedule) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |x: u64| {
        for byte in x.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for p in schedule.placements() {
        fold(p.task.index() as u64);
        fold(p.start);
    }
    h
}

fn run(mut scheduler: MctsScheduler) -> Vec<(u64, u64)> {
    use spear::Scheduler;
    let (dags, spec) = workload();
    dags.iter()
        .map(|dag| {
            let s = scheduler
                .schedule(dag, &spec)
                .expect("workload fits cluster");
            s.validate(dag, &spec).expect("schedule must be valid");
            (s.makespan(), fingerprint(&s))
        })
        .collect()
}

/// Uniformly random over the legal actions; one RNG draw per decision.
struct UniformDriverPolicy;

impl DecisionPolicy<StdRng> for UniformDriverPolicy {
    fn decide(
        &mut self,
        _ctx: &EnvContext<'_>,
        _state: &SimState,
        legal: &[Action],
        rng: &mut StdRng,
    ) -> Action {
        legal[rng.gen_range(0..legal.len())]
    }
}

fn run_env_driver() -> Vec<(u64, u64)> {
    let (dags, spec) = workload();
    dags.iter()
        .map(|dag| {
            let s = EpisodeDriver::new(UniformDriverPolicy)
                .run(dag, &spec, &mut StdRng::seed_from_u64(ENV_DRIVER_SEED))
                .expect("workload fits cluster");
            s.validate(dag, &spec).expect("schedule must be valid");
            (s.makespan(), fingerprint(&s))
        })
        .collect()
}

#[test]
fn pure_mcts_matches_golden_schedules() {
    assert_eq!(run(pure_scheduler()), PURE_GOLDEN);
}

/// The Env layer itself reproduces the pinned schedules: seeded episodes
/// driven through [`EpisodeDriver`] must be bit-stable across refactors,
/// and bit-identical to the hand-rolled stepping loop they replaced.
#[test]
fn env_driver_matches_golden_schedules() {
    assert_eq!(run_env_driver(), ENV_DRIVER_GOLDEN);
    // Cross-check: the same seed through a raw legal_actions/apply loop.
    let (dags, spec) = workload();
    for (dag, &(makespan, fp)) in dags.iter().zip(&ENV_DRIVER_GOLDEN) {
        let mut state = SimState::new(dag, &spec).expect("workload fits cluster");
        let mut rng = StdRng::seed_from_u64(ENV_DRIVER_SEED);
        let mut legal = Vec::new();
        while !state.is_terminal(dag) {
            state.legal_actions_into(dag, &mut legal);
            let action = legal[rng.gen_range(0..legal.len())];
            state.apply(dag, action).expect("legal actions never fail");
        }
        let s = state.into_schedule(dag);
        assert_eq!((s.makespan(), fingerprint(&s)), (makespan, fp));
    }
}

#[test]
fn drl_guided_matches_golden_schedules() {
    assert_eq!(run(drl_scheduler()), DRL_GOLDEN);
}

/// The tree-parallel scheduler at `search_threads = 1` is contractually
/// bit-identical to the sequential search: it must reproduce the exact
/// same golden tables, pure and DRL-guided alike.
#[test]
fn single_thread_tree_parallel_matches_golden_schedules() {
    use spear::{Scheduler, TreeParallelMcts};
    let (dags, spec) = workload();
    let run_tp = |mut s: TreeParallelMcts| -> Vec<(u64, u64)> {
        dags.iter()
            .map(|dag| {
                let sched = s.schedule(dag, &spec).expect("workload fits cluster");
                (sched.makespan(), fingerprint(&sched))
            })
            .collect()
    };

    let pure_cfg = MctsConfig {
        search_threads: 1,
        ..pure_scheduler().config().clone()
    };
    assert_eq!(run_tp(TreeParallelMcts::pure(pure_cfg)), PURE_GOLDEN);

    let seq_drl = drl_scheduler();
    let drl_cfg = MctsConfig {
        search_threads: 1,
        ..seq_drl.config().clone()
    };
    let mut rng = StdRng::seed_from_u64(0);
    let policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[16], &mut rng);
    assert_eq!(run_tp(TreeParallelMcts::drl(drl_cfg, policy)), DRL_GOLDEN);
}

/// Prints the current tables; run with `-- --ignored --nocapture` to
/// regenerate the constants above.
#[test]
#[ignore = "generator for the golden constants, not a check"]
fn print_golden_tables() {
    for (name, results) in [
        ("PURE", run(pure_scheduler())),
        ("DRL", run(drl_scheduler())),
        ("ENV_DRIVER", run_env_driver()),
    ] {
        println!("const {name}_GOLDEN: [(u64, u64); GOLDEN_DAGS] = [");
        for (makespan, fp) in results {
            println!("    ({makespan}, {fp:#018x}),");
        }
        println!("];");
    }
}
