//! Golden determinism tests: fixed-seed searches must reproduce exactly
//! the schedules recorded here. These constants pin the behavior of the
//! MCTS hot path — any refactor that changes RNG call order, float
//! summation order, or action enumeration order will trip them.
//!
//! To regenerate after an *intentional* behavior change, run
//! `cargo test --release --test golden_determinism -- --ignored --nocapture`
//! and copy the printed tables.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spear::dag::generator::LayeredDagSpec;
use spear::{ClusterSpec, Dag, FeatureConfig, MctsConfig, MctsScheduler, PolicyNetwork, Schedule};

/// Number of fixed workload DAGs each golden table covers.
const GOLDEN_DAGS: usize = 3;

/// Tasks per workload DAG (fig6a-style simulation workload).
const GOLDEN_TASKS: usize = 50;

/// Workload generator seed.
const GOLDEN_SEED: u64 = 42;

/// `(makespan, schedule fingerprint)` per DAG for pure MCTS.
const PURE_GOLDEN: [(u64, u64); GOLDEN_DAGS] = [
    (324, 0xc4060ce07e851569),
    (341, 0xf34dcf43c265d051),
    (370, 0x9196126c9e1c5389),
];

/// `(makespan, schedule fingerprint)` per DAG for DRL-guided search.
const DRL_GOLDEN: [(u64, u64); GOLDEN_DAGS] = [
    (344, 0xd0bf2cd026048d95),
    (337, 0x4f191505c3866175),
    (356, 0xb2451e3e80597f51),
];

/// The fixed workload: same generator family as the fig6a experiment.
fn workload() -> (Vec<Dag>, ClusterSpec) {
    let spec = LayeredDagSpec {
        num_tasks: GOLDEN_TASKS,
        ..LayeredDagSpec::paper_simulation()
    };
    let mut rng = StdRng::seed_from_u64(GOLDEN_SEED);
    let dags = (0..GOLDEN_DAGS).map(|_| spec.generate(&mut rng)).collect();
    (dags, ClusterSpec::unit(2))
}

fn pure_scheduler() -> MctsScheduler {
    MctsScheduler::pure(MctsConfig {
        initial_budget: 80,
        min_budget: 16,
        seed: 7,
        ..MctsConfig::default()
    })
}

fn drl_scheduler() -> MctsScheduler {
    let mut rng = StdRng::seed_from_u64(0);
    let policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[16], &mut rng);
    MctsScheduler::drl(
        MctsConfig {
            initial_budget: 30,
            min_budget: 6,
            seed: 7,
            ..MctsConfig::default()
        },
        policy,
    )
}

/// FNV-1a over every task's start time in task order: detects any change
/// to the schedule, not just its makespan.
fn fingerprint(schedule: &Schedule) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |x: u64| {
        for byte in x.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for p in schedule.placements() {
        fold(p.task.index() as u64);
        fold(p.start);
    }
    h
}

fn run(mut scheduler: MctsScheduler) -> Vec<(u64, u64)> {
    use spear::Scheduler;
    let (dags, spec) = workload();
    dags.iter()
        .map(|dag| {
            let s = scheduler
                .schedule(dag, &spec)
                .expect("workload fits cluster");
            s.validate(dag, &spec).expect("schedule must be valid");
            (s.makespan(), fingerprint(&s))
        })
        .collect()
}

#[test]
fn pure_mcts_matches_golden_schedules() {
    assert_eq!(run(pure_scheduler()), PURE_GOLDEN);
}

#[test]
fn drl_guided_matches_golden_schedules() {
    assert_eq!(run(drl_scheduler()), DRL_GOLDEN);
}

/// Prints the current tables; run with `-- --ignored --nocapture` to
/// regenerate the constants above.
#[test]
#[ignore = "generator for the golden constants, not a check"]
fn print_golden_tables() {
    for (name, results) in [
        ("PURE", run(pure_scheduler())),
        ("DRL", run(drl_scheduler())),
    ] {
        println!("const {name}_GOLDEN: [(u64, u64); GOLDEN_DAGS] = [");
        for (makespan, fp) in results {
            println!("    ({makespan}, {fp:#018x}),");
        }
        println!("];");
    }
}
