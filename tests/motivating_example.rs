//! End-to-end reproduction of the paper's motivating example (Fig. 3):
//! on the 8-task job, search-based scheduling (MCTS / Spear) reaches the
//! optimal makespan of 2T while the greedy baselines commit early and pay
//! 2.5T — the "up to 20%" improvement the paper advertises.

use spear::fixtures::{motivating_example, motivating_optimal_makespan};
use spear::{
    CpScheduler, FeatureConfig, Graphene, MctsConfig, MctsScheduler, Scheduler, SjfScheduler,
    SpearBuilder, TetrisScheduler,
};

#[test]
fn greedy_baselines_are_suboptimal() {
    let (dag, spec, _) = motivating_example();
    let optimal = motivating_optimal_makespan();
    for (name, makespan) in [
        (
            "tetris",
            TetrisScheduler::new()
                .schedule(&dag, &spec)
                .unwrap()
                .makespan(),
        ),
        (
            "sjf",
            SjfScheduler::new()
                .schedule(&dag, &spec)
                .unwrap()
                .makespan(),
        ),
        (
            "cp",
            CpScheduler::new().schedule(&dag, &spec).unwrap().makespan(),
        ),
    ] {
        assert_eq!(
            makespan, 25,
            "{name} should commit greedily and pay 2.5T, got {makespan}"
        );
        assert!(makespan > optimal);
    }
}

#[test]
fn graphene_recovers_via_backward_packing() {
    // Graphene's backward pass reads the resource-time space top-down and
    // happens to derive the optimal order on this instance (the paper's
    // Fig. 3 variant defeats it; ours concedes the tie — see DESIGN.md).
    let (dag, spec, _) = motivating_example();
    let s = Graphene::new().schedule(&dag, &spec).unwrap();
    s.validate(&dag, &spec).unwrap();
    assert_eq!(s.makespan(), motivating_optimal_makespan());
}

#[test]
fn pure_mcts_finds_the_optimum() {
    let (dag, spec, _) = motivating_example();
    for seed in 0..3 {
        let mut mcts = MctsScheduler::pure(MctsConfig {
            initial_budget: 300,
            min_budget: 50,
            seed,
            ..MctsConfig::default()
        });
        let (s, stats) = mcts.schedule_with_stats(&dag, &spec).unwrap();
        s.validate(&dag, &spec).unwrap();
        assert_eq!(
            s.makespan(),
            motivating_optimal_makespan(),
            "seed {seed} missed the optimum"
        );
        assert!(stats.iterations > 0);
    }
}

#[test]
fn spear_finds_the_optimum_with_less_budget() {
    let (dag, spec, _) = motivating_example();
    // DRL-guided search still finds the optimum on this instance with a
    // fraction of the pure-MCTS budget (the paper's core claim).
    let mut spear = SpearBuilder::new()
        .initial_budget(150)
        .min_budget(30)
        .feature_config(FeatureConfig::small(2))
        .hidden_layers(&[32])
        .seed(2)
        .build_untrained();
    let s = spear.schedule(&dag, &spec).unwrap();
    s.validate(&dag, &spec).unwrap();
    assert_eq!(s.makespan(), motivating_optimal_makespan());
}

#[test]
fn improvement_is_twenty_percent() {
    let (dag, spec, _) = motivating_example();
    let greedy = TetrisScheduler::new()
        .schedule(&dag, &spec)
        .unwrap()
        .makespan();
    let spear = motivating_optimal_makespan();
    let reduction = (greedy - spear) as f64 / greedy as f64;
    assert!(
        (0.19..=0.21).contains(&reduction),
        "reduction {reduction} should be ≈20%"
    );
}

#[test]
fn makespans_respect_lower_bound() {
    let (dag, spec, _) = motivating_example();
    assert!(dag.makespan_lower_bound(spec.capacity()) <= motivating_optimal_makespan());
    assert_eq!(dag.critical_path_length(), 15); // gate (5) + mem_heavy (10)
}
