//! Online multi-job acceptance: the full scheduler roster on seeded
//! Poisson arrival streams, every union schedule vetted by the three
//! differential judges (which also run the invariant auditor inside the
//! sim-replay judge), plus a union-frontier property sweep over random
//! two-job interleavings.

use spear::dag::generator::LayeredDagSpec;
use spear::diffcheck::{check_multi_schedule, MultiCaseSpec, SchedulerKind};
use spear::{ArrivalProcess, ArrivalStreamSpec, JobQueue, JobSource, Scheduler};

/// The ISSUE acceptance episode: all ten diffcheck schedulers complete a
/// seeded 20-job Poisson stream; the resulting JctReport covers every job
/// and all three judges accept every schedule.
#[test]
fn all_ten_schedulers_complete_a_20_job_poisson_episode() {
    for kind in SchedulerKind::ALL {
        let case = MultiCaseSpec {
            seed: 2024,
            jobs: 20,
            tasks_per_job: 5,
            dims: 2,
            mean_gap: 6.0,
            scheduler: kind,
        };
        let (tri, report) = case
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", case.label()));
        assert!(tri.all_ok(), "{}: {}", case.label(), tri.summary());
        assert_eq!(report.completions().len(), 20, "{}", case.label());
        assert_eq!(report.unfinished(), 0, "{}", case.label());
        assert!(report.mean_jct().unwrap() > 0.0, "{}", case.label());
        assert!(report.p99_jct() >= report.p50_jct(), "{}", case.label());
        assert!(report.p50_jct().is_some(), "{}", case.label());
        assert!(report.unfairness() >= 0.0, "{}", case.label());
        // Every job's JCT is at least its own critical path: contention
        // can only slow a job down.
        for c in report.completions() {
            let ideal = case.queue().job_dag(c.job).critical_path_length();
            assert!(
                c.jct >= ideal,
                "{}: job {} finished in {} < critical path {ideal}",
                case.label(),
                c.job,
                c.jct
            );
        }
    }
}

/// The stream is seed-deterministic end to end: rerunning a case yields
/// the same schedule and the same JCT report for every roster member.
#[test]
fn multi_job_episodes_are_seed_deterministic() {
    for kind in SchedulerKind::ALL {
        let case = MultiCaseSpec {
            seed: 7,
            jobs: 6,
            tasks_per_job: 5,
            dims: 2,
            mean_gap: 4.0,
            scheduler: kind,
        };
        let (_, a) = case.run().unwrap();
        let (_, b) = case.run().unwrap();
        assert_eq!(a, b, "{} is not deterministic", case.label());
    }
}

mod union_frontier_properties {
    use super::*;
    use proptest::prelude::*;

    fn two_job_queue(seed: u64, n0: usize, n1: usize, gap: u64) -> JobQueue {
        let stream = ArrivalStreamSpec {
            jobs: 2,
            process: ArrivalProcess::Poisson { mean_gap: 0.0 },
            source: JobSource::Layered(LayeredDagSpec {
                num_tasks: n0.max(n1),
                ..LayeredDagSpec::paper_training()
            }),
        };
        // Draw two independent DAGs of possibly different sizes from the
        // same seeded family, then pin the arrival gap explicitly.
        let mut dags: Vec<_> = stream
            .generate(seed)
            .unwrap()
            .into_iter()
            .map(|(_, d)| d)
            .collect();
        let d1 = dags.pop().unwrap();
        let d0 = dags.pop().unwrap();
        JobQueue::new(vec![(0, d0), (gap, d1)]).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Two interleaved jobs driven through the multi-job environment
        /// (via each list scheduler's `schedule_multi`) always produce a
        /// union schedule that all three judges accept — including the
        /// per-job sub-schedule and JCT cross-checks inside them.
        #[test]
        fn interleaved_jobs_pass_all_three_judges(
            seed in 0u64..500,
            n in 3usize..9,
            gap in 0u64..15,
        ) {
            let queue = two_job_queue(seed, n, n, gap);
            let spec = spear::ClusterSpec::unit(2);
            for kind in [SchedulerKind::Tetris, SchedulerKind::Sjf, SchedulerKind::Cp] {
                let mut s = kind.build(seed, 2);
                let schedule = s.schedule_multi(&queue, &spec).unwrap();
                let tri = check_multi_schedule(&queue, &spec, &schedule);
                prop_assert!(
                    tri.all_ok(),
                    "{} seed {seed} gap {gap}: {}",
                    kind.name(),
                    tri.summary()
                );
            }
        }

        /// A job arriving after the other job's critical path has elapsed
        /// can never finish before the first job's earliest possible
        /// finish — the union frontier must not let arrivals leak backward
        /// in time.
        #[test]
        fn late_arrivals_never_finish_impossibly_early(
            seed in 0u64..200,
            n in 3usize..7,
            gap in 1u64..20,
        ) {
            let queue = two_job_queue(seed, n, n, gap);
            let spec = spear::ClusterSpec::unit(2);
            let mut s = SchedulerKind::Tetris.build(seed, 2);
            let schedule = s.schedule_multi(&queue, &spec).unwrap();
            let report = queue.jct_report(&schedule);
            prop_assert_eq!(report.completions().len(), 2);
            for c in report.completions() {
                let span = queue.span(c.job);
                let ideal = queue.job_dag(c.job).critical_path_length();
                prop_assert!(c.finish >= span.arrival + ideal);
                prop_assert!(c.jct >= ideal);
            }
        }
    }
}
