//! Heterogeneous-cluster integration tests: the full scheduler roster on
//! a seeded 3-machine cluster judged three independent ways (validate,
//! audited sim replay, per-machine timeline replay), a hand-computed
//! 2-machine golden schedule asserted start-by-start against a committed
//! fixture (regenerate with `UPDATE_GOLDEN=1`), and property tests
//! pinning the network model: a degenerate 1-machine cluster is
//! bit-identical to the single box, co-located parents never pay a
//! transfer delay, and lowering any link bandwidth never produces an
//! earlier makespan for the same placement order.

use std::path::PathBuf;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spear::dag::generator::LayeredDagSpec;
use spear::diffcheck::{check_schedule, Fixture, HeteroCaseSpec, SchedulerKind};
use spear::{
    Action, ClusterSpec, Dag, DagBuilder, MachineSet, Placement, ResourceVec, Schedule, SimState,
    Task, TaskId, TransferMode,
};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

/// The seeded 3-machine spec the roster test runs on: full-size machine
/// 0, tapered machines 1–2, non-uniform links, direct transfers.
fn roster_case(scheduler: SchedulerKind) -> HeteroCaseSpec {
    HeteroCaseSpec {
        seed: 42,
        num_tasks: 12,
        dims: 2,
        machines: 3,
        bandwidth: 2,
        mode: TransferMode::Direct,
        scheduler,
    }
}

/// Every roster scheduler produces a schedule on the 3-machine cluster
/// that all three judges accept — including the invariant auditor, which
/// the sim-replay judge runs step-by-step in heterogeneous mode.
#[test]
fn full_roster_passes_three_judges_on_a_three_machine_cluster() {
    for kind in SchedulerKind::ALL {
        let case = roster_case(kind);
        let tri = case
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", case.label()));
        assert!(tri.all_ok(), "{}: {}", case.label(), tri.summary());
    }
}

/// Both transfer modes work for the whole roster, and at least one
/// scheduler actually uses more than one machine (the cluster is not
/// degenerately serialized onto machine 0).
#[test]
fn via_master_mode_passes_and_the_cluster_is_actually_used() {
    let mut spread = false;
    for kind in SchedulerKind::ALL {
        let case = HeteroCaseSpec {
            mode: TransferMode::ViaMaster,
            ..roster_case(kind)
        };
        let dag = case.dag();
        let spec = case.cluster();
        let schedule = kind
            .build(case.seed, case.dims)
            .schedule(&dag, &spec)
            .unwrap_or_else(|e| panic!("{}: {e}", case.label()));
        let tri = check_schedule(&dag, &spec, &schedule);
        assert!(tri.all_ok(), "{}: {}", case.label(), tri.summary());
        spread |= schedule.placements().iter().any(|p| p.machine > 0);
    }
    assert!(spread, "no roster scheduler placed a task off machine 0");
}

/// The hand-computed golden workload: two unit machines on 1-byte/slot
/// links, every edge payload exactly 1 byte (`max_edge_bytes = 1`), so
/// every cross-machine transfer takes exactly 1 slot.
fn golden_workload() -> (Dag, ClusterSpec) {
    let mut b = DagBuilder::new(1);
    let t0 = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])));
    let t1 = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.6])));
    let _t2 = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
    let t3 = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5])));
    b.add_edge(t0, t3).unwrap();
    b.add_edge(t1, t3).unwrap();
    let dag = b.build().unwrap();
    let machines = MachineSet::uniform(
        2,
        ResourceVec::from_slice(&[1.0]),
        1,
        TransferMode::Direct,
        0,
        1,
    )
    .unwrap();
    (dag, ClusterSpec::hetero(machines).unwrap())
}

/// The hand-computed schedule for [`golden_workload`]:
///
/// * t0 on machine 0 at `[0, 2)` — t1 (0.6) cannot share the box;
/// * t1 on machine 1 at `[0, 1)`;
/// * t2 on machine 1 at `[1, 3)` — fits after t1 frees 0.6;
/// * t3 on machine 1 at `[3, 4)` — its t1 input is co-located (ready at
///   1, no transfer), but the t0 → t3 edge crosses machines: 1 byte over
///   a 1-byte/slot link adds exactly 1 slot, gating the start to
///   `2 + 1 = 3` even though machine 1 has room from slot 1.
fn golden_schedule() -> Schedule {
    let mut placements = vec![
        Placement::new(TaskId::new(0), 0, 2),
        Placement::new(TaskId::new(1), 0, 1),
        Placement::new(TaskId::new(2), 1, 3),
        Placement::new(TaskId::new(3), 3, 4),
    ];
    placements[1].machine = 1;
    placements[2].machine = 1;
    placements[3].machine = 1;
    Schedule::from_placements(placements, 4)
}

/// The hand-computed 2-machine/4-task schedule passes all three judges,
/// start by start, and matches the committed golden byte-for-byte.
/// Regenerate `tests/fixtures/hetero_golden.json` with `UPDATE_GOLDEN=1`
/// after an intentional format change.
#[test]
fn hand_computed_two_machine_schedule_matches_the_committed_golden() {
    let (dag, spec) = golden_workload();
    let schedule = golden_schedule();
    schedule.validate(&dag, &spec).expect("golden is valid");
    let tri = check_schedule(&dag, &spec, &schedule);
    assert!(tri.all_ok(), "{}", tri.summary());

    // Start-by-start: exactly the hand computation above.
    let expect = [(0u64, 2u64, 0u32), (0, 1, 1), (1, 3, 1), (3, 4, 1)];
    for (i, &(start, finish, machine)) in expect.iter().enumerate() {
        let p = schedule.placement_of(TaskId::new(i)).unwrap();
        assert_eq!(
            (p.start, p.finish, p.machine),
            (start, finish, machine),
            "task {i}"
        );
    }

    // Two committed goldens pin the serialized forms: the workload +
    // machine set as a regular fixture (the fixture sweep re-verifies it
    // with Tetris), and the hand-built schedule itself, byte for byte
    // (`.golden`, not `.json`, so the fixture sweep skips it).
    let fixture = Fixture::from_parts(
        "hetero_golden",
        "hand-computed 2-machine/4-task workload with one cross-machine \
         edge (t0 -> t3): the transfer gates t3 to start at 3 = t0 finish \
         2 + 1 slot for 1 byte over a 1-byte/slot link",
        SchedulerKind::Tetris,
        0,
        &dag,
        &spec,
    )
    .to_json();
    let mut rendered = serde_json::to_string_pretty(&schedule).unwrap();
    rendered.push('\n');
    let fixture_path = fixtures_dir().join("hetero_golden.json");
    let schedule_path = fixtures_dir().join("hetero_golden_schedule.golden");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&fixture_path, &fixture).expect("golden writable");
        std::fs::write(&schedule_path, &rendered).expect("golden writable");
    }
    let committed_fixture = std::fs::read_to_string(&fixture_path)
        .expect("tests/fixtures/hetero_golden.json must be committed");
    let committed_schedule = std::fs::read_to_string(&schedule_path)
        .expect("tests/fixtures/hetero_golden_schedule.golden must be committed");
    assert_eq!(
        fixture, committed_fixture,
        "hetero workload golden drifted; regenerate with UPDATE_GOLDEN=1 if deliberate"
    );
    assert_eq!(
        rendered, committed_schedule,
        "hetero schedule golden drifted; regenerate with UPDATE_GOLDEN=1 if deliberate"
    );
}

/// Starting t3 before its cross-machine input lands must be rejected by
/// all three judges — coherently, with no disagreement.
#[test]
fn golden_schedule_with_an_early_start_is_rejected_by_all_judges() {
    let (dag, spec) = golden_workload();
    let mut early = golden_schedule().placements().to_vec();
    early[3].start = 2;
    early[3].finish = 3;
    let bad = Schedule::from_placements(early, 4);
    let tri = check_schedule(&dag, &spec, &bad);
    assert!(tri.validate.is_err(), "validate accepted a gated start");
    assert!(tri.sim_replay.is_err(), "sim replay accepted a gated start");
    assert!(
        tri.timeline_replay.is_err(),
        "timeline replay accepted a gated start"
    );
}

/// Replays fixed `(task, machine)` placement decisions in a fixed order
/// as early as the simulator allows, returning the realized makespan.
fn greedy_replay(dag: &Dag, spec: &ClusterSpec, order: &[(TaskId, u32)]) -> u64 {
    let mut state = SimState::new(dag, spec).expect("workload fits");
    for &(t, m) in order {
        while !state.legal_actions(dag).contains(&Action::Place(t, m)) {
            state
                .apply(dag, Action::Process)
                .expect("a future event must exist while a placement is pending");
        }
        state.apply(dag, Action::Place(t, m)).unwrap();
    }
    while !state.is_terminal(dag) {
        state.apply(dag, Action::Process).unwrap();
    }
    state.makespan().expect("terminal state has a makespan")
}

fn case_dag(seed: u64, num_tasks: usize, dims: usize) -> Dag {
    LayeredDagSpec {
        num_tasks,
        dims,
        ..LayeredDagSpec::paper_training()
    }
    .generate(&mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Zero bandwidth penalty on one machine: a degenerate 1-machine
    /// cluster of the single box's capacity schedules bit-identically to
    /// the single box (same starts, same finishes, machine column 0),
    /// for every roster scheduler.
    #[test]
    fn one_machine_specs_are_bit_identical_to_the_single_box(
        seed in 0u64..1000,
        num_tasks in 4usize..10,
        kind_idx in 0usize..SchedulerKind::ALL.len(),
        bandwidth in 1u64..16,
    ) {
        let kind = SchedulerKind::ALL[kind_idx];
        let dag = case_dag(seed, num_tasks, 2);
        let single = ClusterSpec::unit(2);
        let machines = MachineSet::uniform(
            1,
            ResourceVec::splat(2, 1.0),
            bandwidth,
            TransferMode::Direct,
            seed,
            8,
        )
        .unwrap();
        let one = ClusterSpec::hetero(machines).unwrap();
        let a = kind.build(seed, 2).schedule(&dag, &single).unwrap();
        let b = kind.build(seed, 2).schedule(&dag, &one).unwrap();
        prop_assert_eq!(a.makespan(), b.makespan(), "{}", kind.name());
        for (x, y) in a.placements().iter().zip(b.placements()) {
            prop_assert_eq!(
                (x.task, x.start, x.finish),
                (y.task, y.start, y.finish),
                "{}", kind.name()
            );
            prop_assert_eq!(y.machine, 0);
        }
    }

    /// Co-located parents never incur a transfer delay, in either mode.
    #[test]
    fn co_located_parents_incur_no_transfer_delay(
        seed in 0u64..10_000,
        parent in 0usize..64,
        child in 0usize..64,
        machine in 0u32..3,
        direct in any::<bool>(),
    ) {
        let mode = if direct { TransferMode::Direct } else { TransferMode::ViaMaster };
        let ms = MachineSet::uniform(3, ResourceVec::splat(2, 1.0), 2, mode, seed, 16).unwrap();
        prop_assert_eq!(ms.edge_delay(parent, child, machine, machine), 0);
    }

    /// Lowering any single link's bandwidth never produces an *earlier*
    /// makespan for the same seeded placement order (transfers only gate
    /// starts, they never reorder work).
    #[test]
    fn lowering_a_link_bandwidth_never_speeds_up_a_placement(
        seed in 0u64..500,
        num_tasks in 4usize..12,
        machines in 2usize..4,
        src in 0u32..4,
        dst in 0u32..4,
    ) {
        let src = src % machines as u32;
        let dst = dst % machines as u32;
        let dag = case_dag(seed, num_tasks, 2);
        let ms = MachineSet::uniform(
            machines,
            ResourceVec::splat(2, 1.0),
            8,
            TransferMode::Direct,
            seed,
            16,
        )
        .unwrap();
        let spec = ClusterSpec::hetero(ms.clone()).unwrap();
        // A fixed placement: Tetris's choices on the fast cluster, in
        // start order.
        let schedule = SchedulerKind::Tetris.build(seed, 2).schedule(&dag, &spec).unwrap();
        let mut order: Vec<(TaskId, u32)> = schedule
            .placements()
            .iter()
            .map(|p| (p.task, p.machine))
            .collect();
        order.sort_by_key(|&(t, _)| {
            schedule.placement_of(t).map(|p| (p.start, t)).unwrap()
        });
        let fast = greedy_replay(&dag, &spec, &order);
        let mut slow_ms = ms;
        slow_ms.set_bandwidth(src, dst, 1);
        let slow_spec = ClusterSpec::hetero(slow_ms).unwrap();
        let slow = greedy_replay(&dag, &slow_spec, &order);
        prop_assert!(
            slow >= fast,
            "lowering link {}->{} sped the replay up: {} < {}",
            src, dst, slow, fast
        );
    }

    /// The raw delay model is monotone too: for any payload, a slower
    /// link never shortens a transfer.
    #[test]
    fn transfer_delay_is_monotone_in_bandwidth(
        seed in 0u64..10_000,
        bytes in 1u64..10_000,
        low in 1u64..64,
        extra in 0u64..64,
    ) {
        let mut fast = MachineSet::uniform(
            2,
            ResourceVec::splat(1, 1.0),
            1,
            TransferMode::Direct,
            seed,
            16,
        )
        .unwrap();
        let mut slow = fast.clone();
        fast.set_bandwidth(0, 1, low + extra);
        slow.set_bandwidth(0, 1, low);
        prop_assert!(slow.transfer_delay(bytes, 0, 1) >= fast.transfer_delay(bytes, 0, 1));
    }
}
