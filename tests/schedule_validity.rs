//! Property-based cross-crate validity: any scheduler × any random DAG ×
//! any cluster shape must produce a schedule passing full validation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spear::dag::generator::LayeredDagSpec;
use spear::{
    ClusterSpec, CpScheduler, Dag, Graphene, MctsConfig, MctsScheduler, RandomScheduler,
    ResourceVec, Scheduler, SjfScheduler, TetrisScheduler,
};

fn random_dag(num_tasks: usize, max_width: usize, seed: u64) -> Dag {
    LayeredDagSpec {
        num_tasks,
        min_width: 1,
        max_width,
        // Keep demands within the *narrowest* cluster the test generates.
        max_demand: 0.75,
        ..LayeredDagSpec::paper_simulation()
    }
    .generate(&mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn heuristics_valid_on_any_cluster_shape(
        num_tasks in 1usize..28,
        max_width in 1usize..5,
        dag_seed in any::<u64>(),
        cpu_cap in 0.75f64..3.0,
        mem_cap in 0.75f64..3.0,
    ) {
        let dag = random_dag(num_tasks, max_width, dag_seed);
        let spec = ClusterSpec::new(ResourceVec::from_slice(&[cpu_cap, mem_cap])).unwrap();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(TetrisScheduler::new()),
            Box::new(SjfScheduler::new()),
            Box::new(CpScheduler::new()),
            Box::new(RandomScheduler::seeded(dag_seed)),
            Box::new(Graphene::new()),
        ];
        for s in &mut schedulers {
            let schedule = s.schedule(&dag, &spec).unwrap();
            schedule.validate(&dag, &spec).unwrap();
        }
    }

    #[test]
    fn mcts_valid_on_any_cluster_shape(
        num_tasks in 1usize..18,
        dag_seed in any::<u64>(),
        search_seed in any::<u64>(),
        cpu_cap in 0.75f64..2.0,
    ) {
        let dag = random_dag(num_tasks, 3, dag_seed);
        let spec = ClusterSpec::new(ResourceVec::from_slice(&[cpu_cap, 1.0])).unwrap();
        let mut mcts = MctsScheduler::pure(MctsConfig {
            initial_budget: 25,
            min_budget: 5,
            seed: search_seed,
            ..MctsConfig::default()
        });
        let schedule = mcts.schedule(&dag, &spec).unwrap();
        schedule.validate(&dag, &spec).unwrap();
    }

    /// Tree-parallel MCTS (shared tree, virtual loss, batched leaves)
    /// must produce schedules that all three independent diffcheck
    /// judges accept, for both pure and DRL-guided search, at any
    /// thread count. Schedules at >1 thread are not reproducible — but
    /// they must always be *realizable*.
    #[test]
    fn tree_parallel_mcts_passes_all_judges(
        num_tasks in 2usize..16,
        dag_seed in any::<u64>(),
        search_seed in any::<u64>(),
        threads in 2usize..5,
        leaf_batch in 1usize..5,
    ) {
        use spear::{FeatureConfig, PolicyNetwork, TreeParallelMcts};
        let dag = random_dag(num_tasks, 3, dag_seed);
        let spec = ClusterSpec::unit(2);
        let config = MctsConfig {
            initial_budget: 24,
            min_budget: 6,
            seed: search_seed,
            search_threads: threads,
            leaf_batch_size: leaf_batch,
            ..MctsConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(search_seed);
        let policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[8], &mut rng);
        for mut s in [
            TreeParallelMcts::pure(config.clone()),
            TreeParallelMcts::drl(config.clone(), policy),
        ] {
            let schedule = s.schedule(&dag, &spec).unwrap();
            let check = spear::diffcheck::check_schedule(&dag, &spec, &schedule);
            prop_assert!(check.all_ok(), "{}", check.summary());
        }
    }

    /// Utilization of every produced schedule lies in (0, 1].
    #[test]
    fn utilization_is_a_fraction(
        num_tasks in 1usize..25,
        dag_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, 4, dag_seed);
        let spec = ClusterSpec::unit(2);
        let schedule = TetrisScheduler::new().schedule(&dag, &spec).unwrap();
        let u = schedule.utilization(&dag, &spec);
        prop_assert!(u > 0.0 && u <= 1.0, "utilization {}", u);
    }
}
