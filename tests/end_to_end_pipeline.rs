//! The full Spear pipeline end-to-end: train (pretrain → REINFORCE),
//! save the policy, reload it, schedule with it, and compare against a
//! baseline — the workflow a downstream user runs.

use spear::rl::SelectionMode;
use spear::{
    train_policy, ClusterSpec, FeatureConfig, PolicyNetwork, Scheduler, SpearBuilder,
    TrainingPipelineConfig,
};

#[test]
fn train_save_load_schedule_roundtrip() {
    let spec = ClusterSpec::unit(2);
    let trained = train_policy(&TrainingPipelineConfig::tiny(), &spec).unwrap();

    // Save and reload the network.
    let mut buf = Vec::new();
    trained.policy.net().save(&mut buf).unwrap();
    let net = spear::nn::Mlp::load(buf.as_slice()).unwrap();
    let policy = PolicyNetwork::from_parts(FeatureConfig::small(2), net);

    // Schedule one of the training examples with the reloaded policy.
    let mut spear = SpearBuilder::new()
        .initial_budget(40)
        .min_budget(8)
        .feature_config(FeatureConfig::small(2))
        .seed(5)
        .build_with_policy(policy);
    let dag = &trained.examples[0];
    let schedule = spear.schedule(dag, &spec).unwrap();
    schedule.validate(dag, &spec).unwrap();
}

#[test]
fn pretraining_lifts_policy_above_chance() {
    let spec = ClusterSpec::unit(2);
    let trained = train_policy(&TrainingPipelineConfig::tiny(), &spec).unwrap();
    // The tiny config still pushes imitation accuracy well above uniform
    // (1 / action_dim ≈ 17%).
    assert!(
        trained.pretrain_accuracy > 0.3,
        "accuracy {}",
        trained.pretrain_accuracy
    );
    // The supervised loss decreased.
    assert!(trained.pretrain_loss.last().unwrap() < trained.pretrain_loss.first().unwrap());
}

#[test]
fn learning_curve_is_recorded_per_epoch() {
    let spec = ClusterSpec::unit(2);
    let config = TrainingPipelineConfig::tiny();
    let trained = train_policy(&config, &spec).unwrap();
    assert_eq!(trained.curve.len(), config.reinforce.epochs);
    for (i, p) in trained.curve.iter().enumerate() {
        assert_eq!(p.epoch, i);
        assert!(p.mean_makespan > 0.0);
    }
}

#[test]
fn trained_policy_rolls_out_greedily() {
    let spec = ClusterSpec::unit(2);
    let trained = train_policy(&TrainingPipelineConfig::tiny(), &spec).unwrap();
    let mut policy = trained.policy;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    use rand::SeedableRng;
    for dag in &trained.examples {
        let ep = spear::rl::run_episode(
            &mut policy,
            dag,
            &spec,
            SelectionMode::Greedy,
            false,
            &mut rng,
        )
        .unwrap();
        assert!(ep.makespan >= dag.critical_path_length());
        assert!(ep.makespan <= dag.total_work());
    }
}
