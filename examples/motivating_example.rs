//! The paper's Fig. 3 motivating example, end to end: print the job, run
//! every scheduler, and show why greedy commitment costs 25% extra
//! makespan.
//!
//! ```text
//! cargo run -p spear-core --example motivating_example --release
//! ```

use spear::dag::dot;
use spear::fixtures::{motivating_example, motivating_optimal_makespan};
use spear::{
    CpScheduler, Graphene, MctsConfig, MctsScheduler, Scheduler, SjfScheduler, TetrisScheduler,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (dag, spec, tasks) = motivating_example();

    println!("The motivating job (8 tasks on a unit [CPU, memory] cluster):");
    println!("  cpu-heavy  : runtime 10, demand [0.90, 0.05]");
    println!("  mem-heavy  : runtime 10, demand [0.05, 0.90]   (gated behind a 5-slot task)");
    println!("  balanced ×2: runtime 10, demand [0.45, 0.45]   (only pack with each other)");
    println!("  gate + 3 fillers: runtime 5, demand [0.02, 0.02]");
    println!();
    println!("Pairing constraints: cpu+mem fit together; balanced+balanced fit;");
    println!("cpu+balanced and mem+balanced do NOT. The optimal schedule runs the");
    println!("balanced pair first and the cpu/mem pair second: makespan 2T = 20.");
    println!();

    let mut rows: Vec<(String, u64)> = Vec::new();
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(TetrisScheduler::new()),
        Box::new(SjfScheduler::new()),
        Box::new(CpScheduler::new()),
        Box::new(Graphene::new()),
        Box::new(MctsScheduler::pure(MctsConfig {
            initial_budget: 300,
            min_budget: 50,
            ..MctsConfig::default()
        })),
    ];
    for s in &mut schedulers {
        let schedule = s.schedule(&dag, &spec)?;
        rows.push((s.name().to_owned(), schedule.makespan()));
    }

    println!(
        "{:<10} {:>10} {:>12}",
        "scheduler", "makespan", "vs optimal"
    );
    let optimal = motivating_optimal_makespan();
    for (name, ms) in &rows {
        println!(
            "{:<10} {:>10} {:>11.0}%",
            name,
            ms,
            100.0 * (*ms as f64 - optimal as f64) / optimal as f64
        );
    }
    println!();

    // Show where the greedy schedulers go wrong: they start cpu-heavy at
    // t=0, which blocks both balanced tasks for its whole runtime.
    let greedy = TetrisScheduler::new().schedule(&dag, &spec)?;
    println!(
        "Tetris starts cpu-heavy at t={} and the balanced pair only at t={}, t={}.",
        greedy.placement_of(tasks.cpu_heavy).unwrap().start,
        greedy.placement_of(tasks.balanced[0]).unwrap().start,
        greedy.placement_of(tasks.balanced[1]).unwrap().start,
    );
    let (searched, stats) = MctsScheduler::pure(MctsConfig {
        initial_budget: 300,
        min_budget: 50,
        ..MctsConfig::default()
    })
    .schedule_with_stats(&dag, &spec)?;
    println!(
        "MCTS (after {} rollouts) delays cpu-heavy to t={} and wins: makespan {}.",
        stats.iterations,
        searched.placement_of(tasks.cpu_heavy).unwrap().start,
        searched.makespan(),
    );
    println!();
    println!("Greedy (Tetris) schedule:");
    println!("{}", greedy.render_gantt(&dag, &spec, 50));
    println!("Searched (MCTS) schedule:");
    println!("{}", searched.render_gantt(&dag, &spec, 50));
    println!("Graphviz DOT of the job (render with `dot -Tpng`):");
    println!("{}", dot::to_dot(&dag));
    Ok(())
}
