//! The full training pipeline (paper §IV): supervised pre-training on the
//! critical-path expert, then REINFORCE with an averaged baseline. Prints
//! the learning curve and saves the trained network to
//! `target/spear_policy.json`.
//!
//! ```text
//! cargo run -p spear-core --example train_policy --release
//! ```

use spear::{train_policy, ClusterSpec, Scheduler, SpearBuilder, TrainingPipelineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ClusterSpec::unit(2);
    let config = TrainingPipelineConfig::fast();
    println!(
        "training: {} examples × {} tasks, {} pretrain epochs, {} REINFORCE epochs × {} rollouts",
        config.num_examples,
        config.example_spec.num_tasks,
        config.pretrain.epochs,
        config.reinforce.epochs,
        config.reinforce.rollouts,
    );
    println!("(the paper's full run is 144 examples × 7000 epochs; see DESIGN.md)");
    println!();

    let start = std::time::Instant::now();
    let trained = train_policy(&config, &spec)?;
    println!(
        "pre-training: loss {:.3} -> {:.3}, imitation accuracy {:.0}%",
        trained.pretrain_loss.first().unwrap(),
        trained.pretrain_loss.last().unwrap(),
        100.0 * trained.pretrain_accuracy
    );
    println!();
    println!("{:>6} {:>14} {:>10}", "epoch", "mean makespan", "entropy");
    let stride = (trained.curve.len() / 10).max(1);
    for p in trained.curve.iter().step_by(stride) {
        println!(
            "{:>6} {:>14.1} {:>10.3}",
            p.epoch, p.mean_makespan, p.mean_entropy
        );
    }
    if let Some(last) = trained.curve.last() {
        println!(
            "final mean makespan {:.1} after {:.0?}",
            last.mean_makespan,
            start.elapsed()
        );
    }

    let path = std::path::Path::new("target").join("spear_policy.json");
    trained.policy.net().save_to_path(&path)?;
    println!("saved policy to {}", path.display());

    // Plug the trained policy into Spear and schedule a held-out job.
    let mut spear = SpearBuilder::new()
        .initial_budget(100)
        .min_budget(25)
        .build_with_policy(trained.policy);
    use rand::SeedableRng;
    let held_out = spear::dag::generator::LayeredDagSpec::paper_training()
        .generate(&mut rand::rngs::StdRng::seed_from_u64(9999));
    let schedule = spear.schedule(&held_out, &spec)?;
    println!(
        "held-out 25-task job: Spear makespan {} (critical path {})",
        schedule.makespan(),
        held_out.critical_path_length()
    );
    Ok(())
}
