//! Quickstart: schedule one random job with Spear and every baseline.
//!
//! ```text
//! cargo run -p spear-core --example quickstart --release
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use spear::dag::generator::LayeredDagSpec;
use spear::{
    ClusterSpec, CpScheduler, Graphene, MctsConfig, MctsScheduler, Scheduler, SjfScheduler,
    SpearBuilder, TetrisScheduler,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 50-task job with normally distributed runtimes and CPU/memory
    // demands, like the paper's simulation workload (scaled down so the
    // example finishes in seconds).
    let dag = LayeredDagSpec {
        num_tasks: 50,
        ..LayeredDagSpec::paper_simulation()
    }
    .generate(&mut StdRng::seed_from_u64(7));
    let spec = ClusterSpec::unit(2);

    println!(
        "job: {} tasks, critical path {} slots, total work {} slots",
        dag.len(),
        dag.critical_path_length(),
        dag.total_work()
    );
    println!(
        "lower bound on any makespan: {} slots",
        dag.makespan_lower_bound(spec.capacity())
    );
    println!();
    println!(
        "{:<10} {:>10} {:>12}",
        "scheduler", "makespan", "utilization"
    );

    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(TetrisScheduler::new()),
        Box::new(SjfScheduler::new()),
        Box::new(CpScheduler::new()),
        Box::new(Graphene::new()),
        Box::new(MctsScheduler::pure(MctsConfig {
            initial_budget: 300,
            min_budget: 50,
            ..MctsConfig::default()
        })),
        Box::new(
            SpearBuilder::new()
                .initial_budget(100)
                .min_budget(25)
                .seed(7)
                .build_untrained(),
        ),
    ];
    for s in &mut schedulers {
        let schedule = s.schedule(&dag, &spec)?;
        schedule.validate(&dag, &spec)?;
        println!(
            "{:<10} {:>10} {:>11.1}%",
            s.name(),
            schedule.makespan(),
            100.0 * schedule.utilization(&dag, &spec)
        );
    }
    println!();
    println!("note: this Spear uses an *untrained* policy; run the");
    println!("train_policy example to see the full pipeline.");
    Ok(())
}
