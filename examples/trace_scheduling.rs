//! Trace-driven scheduling (paper §V-C): generate the calibrated
//! synthetic Hive trace, schedule a sample of jobs with Spear and
//! Graphene, and report the per-job makespan reduction — the quantity of
//! Fig. 9(c).
//!
//! ```text
//! cargo run -p spear-core --example trace_scheduling --release
//! ```

use spear::{ClusterSpec, Graphene, Scheduler, SpearBuilder, SyntheticTraceSpec, TraceStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = SyntheticTraceSpec::paper().generate(2019);
    let stats = TraceStats::compute(&trace);
    println!("synthetic production trace: {} MapReduce jobs", stats.jobs);
    println!(
        "  map tasks   : median {:.0}, max {}",
        stats.median_map_tasks, stats.max_map_tasks
    );
    println!(
        "  reduce tasks: median {:.0}, max {}",
        stats.median_reduce_tasks, stats.max_reduce_tasks
    );
    println!(
        "  mean runtimes: map median {:.0}s, reduce median {:.0}s",
        stats.median_map_runtime, stats.median_reduce_runtime
    );
    println!();

    let spec = ClusterSpec::unit(2);
    // Paper §V-C: Spear runs with initial budget 100, minimum budget 50
    // on the trace.
    let mut spear = SpearBuilder::new()
        .initial_budget(100)
        .min_budget(50)
        .seed(1)
        .build_untrained();
    let mut graphene = Graphene::new();

    println!(
        "{:<14} {:>6} {:>10} {:>10} {:>11}",
        "job", "tasks", "graphene", "spear", "reduction"
    );
    let mut reductions = Vec::new();
    for job in trace.jobs.iter().take(10) {
        let dag = job.to_dag()?;
        let g = graphene.schedule(&dag, &spec)?.makespan();
        let s = spear.schedule(&dag, &spec)?.makespan();
        let reduction = (g as f64 - s as f64) / g as f64;
        reductions.push(reduction);
        println!(
            "{:<14} {:>6} {:>10} {:>10} {:>10.1}%",
            job.id,
            dag.len(),
            g,
            s,
            100.0 * reduction
        );
    }
    let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
    println!();
    println!(
        "mean reduction over {} jobs: {:.1}% (paper: up to ≈20%, ≥0 in 90% of jobs)",
        reductions.len(),
        100.0 * mean
    );
    println!("run the fig9c experiment binary for the full 99-job CDF.");
    Ok(())
}
