//! Root-parallel MCTS (the paper's §V-B note that "MCTS can easily be
//! parallelized"): run several independent searches concurrently and keep
//! the best schedule.
//!
//! ```text
//! cargo run -p spear-core --example parallel_search --release
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use spear::dag::generator::LayeredDagSpec;
use spear::{ClusterSpec, MctsConfig, MctsScheduler, RootParallelMcts, Scheduler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dag = LayeredDagSpec {
        num_tasks: 60,
        ..LayeredDagSpec::paper_simulation()
    }
    .generate(&mut StdRng::seed_from_u64(17));
    let spec = ClusterSpec::unit(2);

    let budget = 150;
    let factory = |seed: u64| {
        MctsScheduler::pure(MctsConfig {
            initial_budget: budget,
            min_budget: 25,
            seed,
            ..MctsConfig::default()
        })
    };

    // One worker = a plain sequential search.
    let sequential = factory(0).schedule(&dag, &spec)?;
    println!(
        "sequential MCTS (budget {budget}):    makespan {}",
        sequential.makespan()
    );

    for workers in [2, 4, 8] {
        let start = std::time::Instant::now();
        let (best, stats) =
            RootParallelMcts::new(workers, factory).schedule_with_stats(&dag, &spec)?;
        best.validate(&dag, &spec)?;
        let total_iterations: u64 = stats.iter().map(|s| s.iterations).sum();
        println!(
            "root-parallel ×{workers}: makespan {} ({} total iterations, {:.2?})",
            best.makespan(),
            total_iterations,
            start.elapsed()
        );
    }
    println!();
    println!("best-of-K never loses to any single worker; on a multi-core");
    println!("host the workers run concurrently (this box has 1 CPU).");
    Ok(())
}
