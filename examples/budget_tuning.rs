//! Budget tuning (paper Fig. 7): sweep the MCTS iteration budget on a
//! fixed job and watch the makespan/runtime trade-off, then compare
//! against the budget-decay ablation.
//!
//! ```text
//! cargo run -p spear-core --example budget_tuning --release
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use spear::dag::generator::LayeredDagSpec;
use spear::{ClusterSpec, MctsConfig, MctsScheduler, Scheduler, TetrisScheduler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dag = LayeredDagSpec {
        num_tasks: 60,
        ..LayeredDagSpec::paper_simulation()
    }
    .generate(&mut StdRng::seed_from_u64(21));
    let spec = ClusterSpec::unit(2);
    let tetris = TetrisScheduler::new().schedule(&dag, &spec)?.makespan();
    println!(
        "job: {} tasks; Tetris reference makespan {}",
        dag.len(),
        tetris
    );
    println!();
    println!(
        "{:>8} {:>10} {:>12} {:>10}",
        "budget", "makespan", "iterations", "seconds"
    );
    for budget in [25, 50, 100, 200, 400, 800] {
        let mut mcts = MctsScheduler::pure(MctsConfig {
            initial_budget: budget,
            min_budget: (budget / 10).max(5),
            seed: 1,
            ..MctsConfig::default()
        });
        let (schedule, stats) = mcts.schedule_with_stats(&dag, &spec)?;
        println!(
            "{:>8} {:>10} {:>12} {:>10.2}",
            budget,
            schedule.makespan(),
            stats.iterations,
            stats.elapsed_seconds
        );
    }
    println!();

    // Ablation: hyperbolic decay (Eq. 4) vs a flat budget of the same
    // initial size — decay spends far fewer iterations for similar
    // quality.
    for (label, decay) in [("decayed (Eq. 4)", true), ("flat", false)] {
        let mut mcts = MctsScheduler::pure(MctsConfig {
            initial_budget: 200,
            min_budget: 20,
            decay_budget: decay,
            seed: 1,
            ..MctsConfig::default()
        });
        let (schedule, stats) = mcts.schedule_with_stats(&dag, &spec)?;
        println!(
            "budget 200 {:<16}: makespan {:>5}, iterations {:>8}, {:>6.2}s",
            label,
            schedule.makespan(),
            stats.iterations,
            stats.elapsed_seconds
        );
    }
    Ok(())
}
